//! Tile binning (the "duplication" step of stage ❸).
//!
//! Each projected splat is assigned to every tile its 3σ disc overlaps,
//! exactly like the duplication units in GSCore/Neo's Preprocessing
//! Engine. The result — per-tile lists of `(gaussian_id, depth)` — is the
//! unsorted input to the sorting stage.

use crate::projection::ProjectedGaussian;
use crate::tiles::TileGrid;

/// Membership diff between one tile's populations in consecutive frames
/// — the measurement the warm-start temporal sorting cache acts on.
///
/// Counts are over *unique* Gaussian IDs (binning never assigns a splat
/// to the same tile twice, so for binned populations the counts equal
/// the entry counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TilePopulationDiff {
    /// IDs present in both frames.
    pub retained: usize,
    /// IDs present only in the previous frame.
    pub departed: usize,
    /// IDs present only in the current frame.
    pub arrived: usize,
}

impl TilePopulationDiff {
    /// Fraction of the previous population still present (1.0 when the
    /// previous frame was empty — an empty tile retains everything
    /// vacuously, matching `neo_sort::stats::retention`).
    #[must_use]
    pub fn retention(&self) -> f64 {
        let prev = self.retained + self.departed;
        if prev == 0 {
            1.0
        } else {
            self.retained as f64 / prev as f64
        }
    }

    /// Unique IDs in the previous population.
    #[must_use]
    pub fn prev_len(&self) -> usize {
        self.retained + self.departed
    }

    /// Unique IDs in the current population.
    #[must_use]
    pub fn cur_len(&self) -> usize {
        self.retained + self.arrived
    }
}

/// Diffs one tile's `(id, depth)` population between two frames — the
/// inputs are per-tile slices as produced by [`TileAssignments::tile`].
///
/// # Examples
///
/// ```
/// use neo_pipeline::diff_tile_population;
///
/// let prev = [(1, 2.0), (2, 1.0), (3, 4.0)];
/// let cur = [(2, 1.1), (3, 3.9), (9, 0.5)];
/// let d = diff_tile_population(&prev, &cur);
/// assert_eq!((d.retained, d.departed, d.arrived), (2, 1, 1));
/// assert!((d.retention() - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn diff_tile_population(prev: &[(u32, f32)], cur: &[(u32, f32)]) -> TilePopulationDiff {
    // Sorted-vec set intersection instead of HashSet: same O(n log n)
    // bound, and iteration order (hence any future use of the sets
    // themselves) is deterministic per the architecture contract.
    let mut prev_ids: Vec<u32> = prev.iter().map(|&(id, _)| id).collect();
    let mut cur_ids: Vec<u32> = cur.iter().map(|&(id, _)| id).collect();
    prev_ids.sort_unstable();
    prev_ids.dedup();
    cur_ids.sort_unstable();
    cur_ids.dedup();
    let mut retained = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < prev_ids.len() && j < cur_ids.len() {
        match prev_ids[i].cmp(&cur_ids[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                retained += 1;
                i += 1;
                j += 1;
            }
        }
    }
    TilePopulationDiff {
        retained,
        departed: prev_ids.len() - retained,
        arrived: cur_ids.len() - retained,
    }
}

/// Per-tile lists of `(gaussian_id, depth)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct TileAssignments {
    grid: TileGrid,
    tiles: Vec<Vec<(u32, f32)>>,
}

impl TileAssignments {
    /// Creates empty assignments for a grid.
    pub fn new(grid: TileGrid) -> Self {
        Self {
            grid,
            tiles: vec![Vec::new(); grid.tile_count()],
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Entries of one tile, in insertion (cloud) order.
    pub fn tile(&self, index: usize) -> &[(u32, f32)] {
        &self.tiles[index]
    }

    /// Number of tiles (occupied or not).
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Total assignments across tiles (Σ duplicates).
    pub fn total_assignments(&self) -> usize {
        self.tiles.iter().map(Vec::len).sum()
    }

    /// Number of tiles with at least one entry.
    pub fn occupied_tiles(&self) -> usize {
        self.tiles.iter().filter(|t| !t.is_empty()).count()
    }

    /// Iterates `(tile_index, entries)` over occupied tiles.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, &[(u32, f32)])> {
        self.tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_empty())
            .map(|(i, t)| (i, t.as_slice()))
    }

    /// Largest per-tile population.
    pub fn max_tile_population(&self) -> usize {
        self.tiles.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Bins projected splats into tiles.
///
/// Entries within a tile keep the input order (ascending Gaussian ID),
/// making the output deterministic.
///
/// # Examples
///
/// ```
/// use neo_math::{Vec2, Vec3};
/// use neo_pipeline::{bin_to_tiles, ProjectedGaussian, TileGrid};
///
/// let grid = TileGrid::new(256, 256, 64);
/// // A splat centered on the corner shared by four tiles is duplicated
/// // into each of them.
/// let splat = ProjectedGaussian {
///     id: 7,
///     mean2d: Vec2::new(64.0, 64.0),
///     depth: 2.5,
///     conic: (1.0, 0.0, 1.0),
///     radius: 6.0,
///     color: Vec3::ONE,
///     opacity: 0.9,
/// };
/// let binned = bin_to_tiles(&grid, &[splat]);
/// assert_eq!(binned.total_assignments(), 4);
/// assert_eq!(binned.occupied_tiles(), 4);
/// assert_eq!(binned.tile(grid.tile_index(0, 0)), &[(7, 2.5)]);
/// ```
pub fn bin_to_tiles(grid: &TileGrid, projected: &[ProjectedGaussian]) -> TileAssignments {
    let mut out = TileAssignments::new(*grid);
    for p in projected {
        let Some((tx0, ty0, tx1, ty1)) = grid.tiles_for_splat(p.mean2d, p.radius) else {
            continue;
        };
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                out.tiles[grid.tile_index(tx, ty)].push((p.id, p.depth));
            }
        }
    }
    out
}

/// [`bin_to_tiles`] with cluster tags threaded through: additionally
/// returns, per tile, the sorted deduplicated set of cluster tags
/// (`(cluster_index << 1) | proxy_bit`, as produced by
/// [`crate::project_clusters`]) whose splats landed in that tile.
///
/// The warm-start cache diffs these sets between frames: a cluster
/// whose tag flips (proxy ↔ members) changes the tile's splat
/// population wholesale, so the sorter invalidates at cluster
/// granularity instead of re-deriving it from per-ID diffs.
///
/// `tags` must be parallel to `projected` (same length).
pub fn bin_to_tiles_with_clusters(
    grid: &TileGrid,
    projected: &[ProjectedGaussian],
    tags: &[u32],
) -> (TileAssignments, Vec<Vec<u32>>) {
    // neo-lint: allow(r2, "misuse guard on a parallel-slice contract; a silent zip-truncate would corrupt cache invalidation")
    assert_eq!(projected.len(), tags.len(), "tags must parallel projected");
    let mut out = TileAssignments::new(*grid);
    let mut tile_tags: Vec<Vec<u32>> = vec![Vec::new(); grid.tile_count()];
    for (p, &tag) in projected.iter().zip(tags) {
        let Some((tx0, ty0, tx1, ty1)) = grid.tiles_for_splat(p.mean2d, p.radius) else {
            continue;
        };
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let ti = grid.tile_index(tx, ty);
                out.tiles[ti].push((p.id, p.depth));
                tile_tags[ti].push(tag);
            }
        }
    }
    for t in &mut tile_tags {
        t.sort_unstable();
        t.dedup();
    }
    (out, tile_tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_math::{Vec2, Vec3};

    fn splat(id: u32, x: f32, y: f32, radius: f32, depth: f32) -> ProjectedGaussian {
        ProjectedGaussian {
            id,
            mean2d: Vec2::new(x, y),
            depth,
            conic: (1.0, 0.0, 1.0),
            radius,
            color: Vec3::ONE,
            opacity: 0.9,
        }
    }

    #[test]
    fn small_splat_lands_in_one_tile() {
        let grid = TileGrid::new(256, 256, 64);
        let binned = bin_to_tiles(&grid, &[splat(0, 100.0, 30.0, 5.0, 2.0)]);
        assert_eq!(binned.total_assignments(), 1);
        assert_eq!(binned.occupied_tiles(), 1);
        assert_eq!(binned.tile(grid.tile_index(1, 0)), &[(0, 2.0)]);
    }

    #[test]
    fn straddling_splat_is_duplicated() {
        let grid = TileGrid::new(256, 256, 64);
        let binned = bin_to_tiles(&grid, &[splat(3, 64.0, 64.0, 6.0, 1.0)]);
        assert_eq!(binned.total_assignments(), 4);
        for (tx, ty) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            assert_eq!(binned.tile(grid.tile_index(tx, ty)).len(), 1);
        }
    }

    #[test]
    fn off_screen_splat_is_skipped() {
        let grid = TileGrid::new(256, 256, 64);
        let binned = bin_to_tiles(&grid, &[splat(0, -100.0, 10.0, 5.0, 1.0)]);
        assert_eq!(binned.total_assignments(), 0);
        assert_eq!(binned.occupied_tiles(), 0);
    }

    #[test]
    fn order_within_tile_is_input_order() {
        let grid = TileGrid::new(128, 128, 64);
        let splats = vec![
            splat(0, 30.0, 30.0, 3.0, 5.0),
            splat(1, 35.0, 30.0, 3.0, 1.0),
            splat(2, 40.0, 30.0, 3.0, 3.0),
        ];
        let binned = bin_to_tiles(&grid, &splats);
        let tile = binned.tile(0);
        assert_eq!(tile.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn diff_tile_population_counts_membership_churn() {
        let prev = [(0u32, 1.0f32), (1, 2.0), (2, 3.0)];
        let cur = [(1u32, 2.5f32), (2, 2.9), (3, 0.5), (4, 9.0)];
        let d = diff_tile_population(&prev, &cur);
        assert_eq!(d.retained, 2);
        assert_eq!(d.departed, 1);
        assert_eq!(d.arrived, 2);
        assert_eq!(d.prev_len(), 3);
        assert_eq!(d.cur_len(), 4);
        assert!((d.retention() - 2.0 / 3.0).abs() < 1e-12);
        // Vacuous retention for an empty previous population.
        assert_eq!(diff_tile_population(&[], &cur).retention(), 1.0);
        // Disjoint populations retain nothing.
        assert_eq!(diff_tile_population(&prev, &[]).retention(), 0.0);
    }

    #[test]
    fn clustered_binning_matches_plain_and_collects_tags() {
        let grid = TileGrid::new(128, 128, 64);
        let splats = vec![
            splat(0, 30.0, 30.0, 3.0, 5.0),
            splat(1, 35.0, 30.0, 3.0, 1.0),
            splat(2, 100.0, 100.0, 3.0, 3.0),
            splat(3, -500.0, 0.0, 3.0, 2.0), // off-grid: no tile, no tag
        ];
        let tags = vec![4, 4, 7, 9];
        let (binned, tile_tags) = bin_to_tiles_with_clusters(&grid, &splats, &tags);
        assert_eq!(binned, bin_to_tiles(&grid, &splats));
        assert_eq!(tile_tags.len(), grid.tile_count());
        assert_eq!(tile_tags[0], vec![4]); // two splats, one cluster tag
        assert_eq!(tile_tags[grid.tile_index(1, 1)], vec![7]);
        let mentioned: usize = tile_tags.iter().map(Vec::len).sum();
        assert_eq!(mentioned, 2, "off-grid splat contributes no tag");
    }

    #[test]
    fn population_stats() {
        let grid = TileGrid::new(128, 128, 64);
        let splats = vec![
            splat(0, 30.0, 30.0, 3.0, 5.0),
            splat(1, 35.0, 30.0, 3.0, 1.0),
            splat(2, 100.0, 100.0, 3.0, 3.0),
        ];
        let binned = bin_to_tiles(&grid, &splats);
        assert_eq!(binned.max_tile_population(), 2);
        assert_eq!(binned.iter_occupied().count(), 2);
    }
}
