//! Cluster-granular culling and footprint-driven LOD selection.
//!
//! The flat pipeline walks every Gaussian of the cloud each frame. This
//! module consults a [`ClusteredCloud`] spatial index first: whole
//! clusters are rejected with a conservative frustum test, distant
//! clusters whose screen footprint falls below a threshold are replaced
//! by their precomputed merged proxies, and only the surviving clusters'
//! members are projected (streamed from storage in consecutive-ID runs
//! via `visit_range`).
//!
//! # Determinism and parity
//!
//! The cluster cull is *provably conservative* with respect to the
//! per-splat frustum test: a cluster is rejected only when every member
//! is guaranteed to fail `in_frustum`. With proxy substitution disabled
//! (`proxy_footprint_px == 0`), the output of [`project_clusters`] is
//! therefore byte-identical to
//! [`project_storage`](crate::projection::project_storage) — same
//! splats, same arithmetic, same ascending-ID order. The `lod_parity`
//! suite pins this.
//!
//! Proxy splats are addressed by **pipeline IDs**
//! `source_len() + proxy_index`, so they never collide with member IDs
//! and downstream binning/sorting stay deterministic.

use crate::projection::{project_gaussian_with_view, ProjectedGaussian};
use neo_math::num::u64_from_usize;
use neo_math::{Aabb, Mat4, Vec3};
use neo_scene::{Camera, CloudStorage, Cluster, ClusteredCloud};

/// Configuration of the cluster-index LOD path.
///
/// Attached to the renderer via `RendererConfig::with_lod`; absent
/// (the default) the renderer keeps the flat projection walk and its
/// byte-exact legacy output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LodConfig {
    /// Target member count per cluster handed to the index builder
    /// (`ClusterParams::target_cluster_size`). Must be ≥ 1.
    pub cluster_size: u32,
    /// Screen-footprint threshold (pixels): a visible cluster whose
    /// conservative projected diameter is below this is rendered from
    /// its merged proxies instead of its members. `0.0` disables proxy
    /// substitution (culling still applies), which keeps the output
    /// byte-identical to the flat path.
    pub proxy_footprint_px: f32,
}

impl Default for LodConfig {
    fn default() -> Self {
        Self {
            cluster_size: 512,
            proxy_footprint_px: 12.0,
        }
    }
}

impl LodConfig {
    /// Validates the configuration, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cluster_size == 0 {
            return Err("lod.cluster_size must be >= 1".to_string());
        }
        if !self.proxy_footprint_px.is_finite() || self.proxy_footprint_px < 0.0 {
            return Err(format!(
                "lod.proxy_footprint_px must be finite and >= 0, got {}",
                self.proxy_footprint_px
            ));
        }
        Ok(())
    }
}

/// Result of projecting a cloud through its cluster index.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterProjection {
    /// Projected splats, ascending by pipeline ID (member IDs first,
    /// proxy IDs — `source_len() + proxy_index` — after them).
    pub projected: Vec<ProjectedGaussian>,
    /// Per-splat cluster tag, parallel to `projected`:
    /// `(cluster_index << 1) | proxy_bit`. The tag feeds cluster-granular
    /// warm-start invalidation — a cluster flipping between member and
    /// proxy rendering changes its tag, which downstream binning exposes
    /// per tile.
    pub tags: Vec<u32>,
    /// Clusters in the index.
    pub clusters_total: u64,
    /// Clusters rejected by the conservative whole-cluster frustum test.
    pub clusters_culled: u64,
    /// Visible clusters rendered from proxies instead of members.
    pub clusters_proxied: u64,
    /// Member splats whose individual projection was skipped: all
    /// members of culled clusters plus the member-minus-proxy surplus of
    /// proxied clusters.
    pub splats_saved: u64,
    /// Records actually decoded from storage or the proxy table — the
    /// feature-extraction traffic unit (multiply by record bytes).
    pub splats_visited: u64,
}

/// Camera-space AABB of a world-space box under `view`, inflated by a
/// small epsilon so that any f32-rounded `view.transform_point(p)` of a
/// point `p` inside the box stays inside.
fn camera_space_box(view: &Mat4, b: Aabb) -> (Vec3, Vec3) {
    let mut lo = Vec3::splat(f32::INFINITY);
    let mut hi = Vec3::splat(f32::NEG_INFINITY);
    for i in 0..8u32 {
        let corner = Vec3::new(
            if i & 1 == 0 { b.min.x } else { b.max.x },
            if i & 2 == 0 { b.min.y } else { b.max.y },
            if i & 4 == 0 { b.min.z } else { b.max.z },
        );
        let t = view.transform_point(corner);
        lo = lo.min(t);
        hi = hi.max(t);
    }
    let mag = lo
        .abs()
        .max(hi.abs())
        .max_element()
        .max(b.min.abs().max(b.max.abs()).max_element());
    let eps = Vec3::splat(1e-4 + 1e-5 * mag);
    (lo - eps, hi + eps)
}

/// Smallest |v| over the interval `[lo, hi]` (0 when it straddles 0).
fn min_abs(lo: f32, hi: f32) -> f32 {
    if lo <= 0.0 && hi >= 0.0 {
        0.0
    } else {
        lo.abs().min(hi.abs())
    }
}

/// Conservative whole-cluster frustum test.
///
/// `bounds` is the world-space AABB of the member means, `max_radius`
/// the largest member 3σ radius. Returns `false` only when **every**
/// member is guaranteed to fail the per-splat `in_frustum` test: a
/// member's camera-space center `t` lies inside the (inflated)
/// camera-space bounds box `[lo, hi]` and its radius `r ≤ R`, so
/// `t.z + r ≤ hi.z + R`, `t.z − r ≥ lo.z − R`,
/// `|t.x| ≥ min_abs(lo.x, hi.x)` while its allowance
/// `max(t.z, near)·tan + r ≤ max(hi.z, near)·tan + R` — each cluster
/// inequality failing implies the member inequality fails.
pub fn cluster_visible(cam: &Camera, view: &Mat4, bounds: Aabb, max_radius: f32) -> bool {
    let (lo, hi) = camera_space_box(view, bounds);
    visible_box(cam, lo, hi, max_radius)
}

/// [`cluster_visible`] on a precomputed camera-space box (the hot path
/// shares the box with the footprint estimate).
fn visible_box(cam: &Camera, lo: Vec3, hi: Vec3, max_radius: f32) -> bool {
    let r = max_radius;
    if hi.z + r < cam.near || lo.z - r > cam.far {
        return false;
    }
    let z = hi.z.max(cam.near);
    let tan_x = (cam.fov_x() * 0.5).tan();
    let tan_y = (cam.fov_y * 0.5).tan();
    min_abs(lo.x, hi.x) <= z * tan_x + r && min_abs(lo.y, hi.y) <= z * tan_y + r
}

/// Conservative screen footprint (pixel diameter) of a cluster from its
/// camera-space bounds box and member radius bound.
fn cluster_footprint_px(cam: &Camera, lo: Vec3, hi: Vec3, max_radius: f32) -> f32 {
    let center = (lo + hi) * 0.5;
    let half_diag = ((hi - lo) * 0.5).length();
    let r = half_diag + max_radius;
    let z = (center.z - r).max(cam.near);
    cam.focal().y * (2.0 * r) / z
}

/// Projects `storage` through its cluster `index`: culls whole clusters,
/// substitutes proxies for sub-threshold clusters, and streams surviving
/// members from storage in consecutive-ID runs.
///
/// `index` must have been built over `storage` (same length, same
/// contents); the output is sorted ascending by pipeline ID, with the
/// parallel [`ClusterProjection::tags`] recording each splat's cluster.
pub fn project_clusters(
    cam: &Camera,
    storage: &dyn CloudStorage,
    index: &ClusteredCloud,
    cfg: &LodConfig,
) -> ClusterProjection {
    let view = cam.view_matrix();
    let proxy_base = index.source_len();
    let substitution = cfg.proxy_footprint_px > 0.0 && !index.is_degenerate();

    let mut items: Vec<(ProjectedGaussian, u32)> = Vec::new();
    let mut clusters_culled = 0u64;
    let mut clusters_proxied = 0u64;
    let mut splats_saved = 0u64;
    let mut splats_visited = 0u64;

    for (ci, cluster) in index.clusters().iter().enumerate() {
        let (lo, hi) = camera_space_box(&view, cluster.bounds());
        if !visible_box(cam, lo, hi, cluster.max_radius()) {
            clusters_culled += 1;
            splats_saved += u64_from_usize(cluster.len());
            continue;
        }
        let tag_base = u32::try_from(ci).unwrap_or(u32::MAX >> 1) << 1;
        let (proxy_start, proxy_len) = cluster.proxy_range();
        let proxied = substitution
            && proxy_len > 0
            && cluster_footprint_px(cam, lo, hi, cluster.max_radius()) < cfg.proxy_footprint_px;
        if proxied {
            clusters_proxied += 1;
            splats_saved += u64_from_usize(cluster.len()) - u64::from(proxy_len);
            for (k, p) in index.cluster_proxies(ci).iter().enumerate() {
                splats_visited += 1;
                let pid = proxy_base
                    .saturating_add(proxy_start)
                    .saturating_add(u32::try_from(k).unwrap_or(u32::MAX));
                if let Some(pp) = project_gaussian_with_view(cam, &view, pid, p) {
                    items.push((pp, tag_base | 1));
                }
            }
        } else {
            for (start, end) in consecutive_runs(cluster) {
                storage.visit_range(start, end, &mut |id, g| {
                    splats_visited += 1;
                    if let Some(p) = project_gaussian_with_view(cam, &view, id, g) {
                        items.push((p, tag_base));
                    }
                });
            }
        }
    }

    // Pipeline IDs are unique (members < source_len ≤ proxy IDs), so
    // sorting by ID alone is a total, deterministic order.
    items.sort_unstable_by_key(|&(p, _)| p.id);
    let tags = items.iter().map(|&(_, tag)| tag).collect();
    let projected = items.into_iter().map(|(p, _)| p).collect();
    ClusterProjection {
        projected,
        tags,
        clusters_total: u64_from_usize(index.cluster_count()),
        clusters_culled,
        clusters_proxied,
        splats_saved,
        splats_visited,
    }
}

/// Maximal runs of consecutive member IDs, as `(start, end)` half-open
/// ranges for `visit_range` streaming.
fn consecutive_runs(cluster: &Cluster) -> Vec<(u32, u32)> {
    let members = cluster.members();
    let mut runs = Vec::new();
    let mut s = 0usize;
    while s < members.len() {
        let mut e = s + 1;
        while e < members.len() && members[e] == members[e - 1] + 1 {
            e += 1;
        }
        runs.push((members[s], members[e - 1] + 1));
        s = e;
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::culling::in_frustum;
    use crate::projection::project_storage;
    use neo_scene::synth::{CityParams, SynthParams};
    use neo_scene::{ClusterParams, Resolution, SoaCloud};

    fn city() -> neo_scene::GaussianCloud {
        CityParams {
            splats_per_block: 150,
            ..CityParams::default().scaled(4.0)
        }
        .build()
    }

    fn street_cam(cloud_extent: f32) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 1.7, -0.4 * cloud_extent),
            Vec3::new(0.0, 4.0, cloud_extent),
            Vec3::Y,
            0.9,
            Resolution::Custom(320, 180),
        )
    }

    fn cull_only() -> LodConfig {
        LodConfig {
            proxy_footprint_px: 0.0,
            ..LodConfig::default()
        }
    }

    #[test]
    fn cull_parity_with_flat_path() {
        let cloud = city();
        let idx = ClusteredCloud::build(&cloud, ClusterParams::default());
        let cam = street_cam(40.0);
        let flat = project_storage(&cam, &cloud);
        let clustered = project_clusters(&cam, &cloud, &idx, &cull_only());
        assert_eq!(clustered.projected, flat);
        assert!(clustered.clusters_culled > 0, "street cam should cull");
        assert_eq!(clusters_tag_proxy_count(&clustered), 0);
    }

    #[test]
    fn cull_parity_on_soa_backend() {
        let cloud = city();
        let soa = SoaCloud::from_cloud(&cloud);
        let idx = ClusteredCloud::build(&soa, ClusterParams::default());
        let cam = street_cam(40.0);
        assert_eq!(
            project_clusters(&cam, &soa, &idx, &cull_only()).projected,
            project_storage(&cam, &soa)
        );
    }

    #[test]
    fn degenerate_index_is_flat_path() {
        let cloud = SynthParams {
            gaussian_count: 500,
            ..Default::default()
        }
        .build();
        let idx = ClusteredCloud::degenerate(&cloud);
        let cam = street_cam(6.0);
        let out = project_clusters(&cam, &cloud, &idx, &LodConfig::default());
        assert_eq!(out.projected, project_storage(&cam, &cloud));
        assert!(out.tags.iter().all(|&t| t == 0));
    }

    #[test]
    fn culled_cluster_members_all_fail_per_splat_test() {
        let cloud = city();
        let idx = ClusteredCloud::build(&cloud, ClusterParams::default());
        let cam = street_cam(40.0);
        let view = cam.view_matrix();
        let mut culled = 0;
        for c in idx.clusters() {
            if cluster_visible(&cam, &view, c.bounds(), c.max_radius()) {
                continue;
            }
            culled += 1;
            for &id in c.members() {
                let g = cloud.get(id).unwrap();
                let t = view.transform_point(g.mean);
                assert!(
                    !in_frustum(&cam, t, g.bounding_radius()),
                    "cluster cull dropped visible splat {id}"
                );
            }
        }
        assert!(culled > 0, "test needs at least one culled cluster");
    }

    #[test]
    fn proxies_substitute_far_clusters_and_save_work() {
        let cloud = city();
        let idx = ClusteredCloud::build(&cloud, ClusterParams::default());
        let cam = street_cam(40.0);
        let cfg = LodConfig {
            proxy_footprint_px: 48.0,
            ..LodConfig::default()
        };
        let out = project_clusters(&cam, &cloud, &idx, &cfg);
        let flat = project_storage(&cam, &cloud);
        assert!(out.clusters_proxied > 0, "far clusters should be proxied");
        assert!(out.projected.len() < flat.len());
        assert!(out.splats_visited < u64_from_usize(cloud.len()));
        // Proxy IDs live above the member ID space and match their tag.
        for (p, &tag) in out.projected.iter().zip(&out.tags) {
            if tag & 1 == 1 {
                assert!(p.id >= idx.source_len());
            } else {
                assert!(p.id < idx.source_len());
                let c = &idx.clusters()[(tag >> 1) as usize];
                assert!(c.members().binary_search(&p.id).is_ok());
            }
        }
        // Output stays sorted by pipeline ID.
        for w in out.projected.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let cloud = city();
        let idx = ClusteredCloud::build(&cloud, ClusterParams::default());
        let cam = street_cam(40.0);
        let out = project_clusters(&cam, &cloud, &idx, &LodConfig::default());
        assert_eq!(out.clusters_total, u64_from_usize(idx.cluster_count()));
        assert!(out.clusters_culled + out.clusters_proxied <= out.clusters_total);
        assert_eq!(out.projected.len(), out.tags.len());
        // Visited + saved covers every member (proxied clusters also visit
        // their proxies, hence ≥).
        assert!(out.splats_visited + out.splats_saved >= u64_from_usize(cloud.len()));
    }

    #[test]
    fn lod_config_validates() {
        assert!(LodConfig::default().validate().is_ok());
        assert!(LodConfig {
            cluster_size: 0,
            ..LodConfig::default()
        }
        .validate()
        .is_err());
        assert!(LodConfig {
            proxy_footprint_px: f32::NAN,
            ..LodConfig::default()
        }
        .validate()
        .is_err());
        assert!(LodConfig {
            proxy_footprint_px: -1.0,
            ..LodConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn consecutive_runs_cover_members() {
        let cloud = city();
        let idx = ClusteredCloud::build(&cloud, ClusterParams::default());
        for c in idx.clusters() {
            let runs = consecutive_runs(c);
            let expanded: Vec<u32> = runs.iter().flat_map(|&(s, e)| s..e).collect();
            assert_eq!(expanded, c.members());
        }
    }

    fn clusters_tag_proxy_count(out: &ClusterProjection) -> usize {
        out.tags.iter().filter(|&&t| t & 1 == 1).count()
    }
}
