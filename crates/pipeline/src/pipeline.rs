//! Stage ❹ (rasterization) and the reference end-to-end renderer.
//!
//! The reference renderer sorts each tile from scratch with a stable sort —
//! this is the "original 3DGS" behaviour that Neo's reuse-and-update
//! renderer (in `neo-core`) is compared against for image quality.

use crate::binning::bin_to_tiles;
use crate::framebuffer::Image;
use crate::projection::{project_cloud, ProjectedGaussian};
use crate::scratch::RasterScratch;
use crate::stats::{FrameStats, Stage};
use crate::tiles::{subtile_bitmap, TileGrid, SUBTILE_SIZE};
use neo_math::{Vec2, Vec3};
use neo_scene::{Camera, GaussianCloud};

/// Default transmittance threshold below which a pixel is considered
/// saturated and blending stops (the reference implementation's 1/255).
pub const DEFAULT_TRANSMITTANCE_EPS: f32 = 1.0 / 255.0;

/// Configuration for the functional renderer.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderConfig {
    /// Tile edge in pixels (paper: 64).
    pub tile_size: u32,
    /// Background color.
    pub background: Vec3,
    /// Use subtile intersection bitmaps to skip non-overlapping subtiles
    /// (GSCore/Neo behaviour). Disabling rasterizes every pixel of a tile.
    pub subtiling: bool,
    /// Early-termination threshold on per-pixel transmittance. Lowering it
    /// towards zero approaches exhaustive blending (used as the
    /// "ground-truth" configuration in quality experiments).
    pub transmittance_eps: f32,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            tile_size: 64,
            background: Vec3::ZERO,
            subtiling: true,
            transmittance_eps: DEFAULT_TRANSMITTANCE_EPS,
        }
    }
}

/// Per-tile blending outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileRasterStats {
    /// α-blend operations performed.
    pub blend_ops: u64,
    /// Pixels that saturated before exhausting the Gaussian list.
    pub saturated_pixels: u64,
    /// Gaussians whose subtile bitmap was empty (no intersection at all) —
    /// these are the "outgoing" candidates Neo's ITU flags.
    pub zero_coverage: u64,
}

/// Rasterizes one tile given its depth-ordered splats.
///
/// `ordered` must be sorted by ascending depth; the function blends
/// front-to-back with early termination and (optionally) subtile skipping.
///
/// This one-shot wrapper allocates fresh working buffers per call; hot
/// loops should hold a [`RasterScratch`] and call
/// [`rasterize_tile_with_scratch`] instead (byte-identical output).
pub fn rasterize_tile(
    image: &mut Image,
    grid: &TileGrid,
    tile_index: usize,
    ordered: &[&ProjectedGaussian],
    config: &RenderConfig,
) -> TileRasterStats {
    let mut scratch = RasterScratch::new();
    let stats = rasterize_tile_with_scratch(&mut scratch, grid, tile_index, ordered, config);
    scratch.blit_to(image, grid, tile_index);
    stats
}

/// Rasterizes one tile into `scratch`'s reusable buffers, leaving the
/// finished pixel block in the scratch instead of writing a framebuffer.
///
/// `ordered` must be sorted by ascending depth, exactly as for
/// [`rasterize_tile`]. The caller commits the block with
/// [`RasterScratch::blit_to`] (immediately for serial rendering, or after
/// a parallel frame's workers join — the deferred merge is what makes
/// sharded rendering deterministic).
pub fn rasterize_tile_with_scratch(
    scratch: &mut RasterScratch,
    grid: &TileGrid,
    tile_index: usize,
    ordered: &[&ProjectedGaussian],
    config: &RenderConfig,
) -> TileRasterStats {
    let tx = (tile_index as u32) % grid.tiles_x();
    let ty = (tile_index as u32) / grid.tiles_x();
    let (x0, y0, x1, y1) = grid.tile_rect(tx, ty);
    let mut stats = TileRasterStats::default();

    // Per-pixel transmittance and accumulated color for this tile, in
    // buffers reused across tiles and frames.
    let w = (x1 - x0) as usize;
    let h = (y1 - y0) as usize;
    let eps = config.transmittance_eps;
    scratch.width = w;
    scratch.height = h;
    scratch.transmittance.clear();
    scratch.transmittance.resize(w * h, 1.0);
    scratch.color.clear();
    scratch.color.resize(w * h, config.background);
    let transmittance = &mut scratch.transmittance;
    let color = &mut scratch.color;
    let mut live_pixels = (w * h) as i64;

    // Precompute bitmaps when subtiling is on.
    for p in ordered {
        if live_pixels <= 0 {
            break;
        }
        let bitmap = if config.subtiling {
            let bm = subtile_bitmap(grid, tx, ty, p.mean2d, p.radius);
            if bm == 0 {
                stats.zero_coverage += 1;
                continue;
            }
            bm
        } else {
            u64::MAX
        };

        let per_edge = grid.subtiles_per_edge();
        for py in y0..y1 {
            for px in x0..x1 {
                let li = ((py - y0) as usize) * w + (px - x0) as usize;
                let t = transmittance[li];
                if t < eps {
                    continue;
                }
                if config.subtiling {
                    let sx = (px - x0) / SUBTILE_SIZE;
                    let sy = (py - y0) / SUBTILE_SIZE;
                    let bit = sy * per_edge + sx;
                    if bit < 64 && bitmap & (1u64 << bit) == 0 {
                        continue;
                    }
                }
                let pc = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                let alpha = p.alpha_at(pc);
                if alpha < 1.0 / 255.0 {
                    continue;
                }
                stats.blend_ops += 1;
                color[li] += p.color * (alpha * t);
                let nt = t * (1.0 - alpha);
                transmittance[li] = nt;
                if nt < eps {
                    stats.saturated_pixels += 1;
                    live_pixels -= 1;
                }
            }
        }
    }

    // Composite over the background using remaining transmittance. The
    // accumulation above already starts from background-colored pixels, so
    // we just need to scale the background by the transmittance actually
    // left: rewrite pixels as accumulated + T * background. To avoid double
    // counting we initialize color to ZERO-equivalent: fix up here.
    for py in y0..y1 {
        for px in x0..x1 {
            let li = ((py - y0) as usize) * w + (px - x0) as usize;
            let t = transmittance[li];
            color[li] = color[li] - config.background + config.background * t;
        }
    }
    stats
}

/// Renders one frame with the reference pipeline: cull+project, bin, sort
/// each tile from scratch (stable by depth), rasterize.
///
/// Returns the image and the frame statistics, including a DRAM-traffic
/// ledger computed with the same accounting rules the performance models
/// use (entries are 8 bytes: 4-byte ID + 4-byte depth key).
pub fn render_reference(
    cloud: &GaussianCloud,
    cam: &Camera,
    config: &RenderConfig,
) -> (Image, FrameStats) {
    let projected = project_cloud(cam, cloud);
    let grid = TileGrid::new(cam.width, cam.height, config.tile_size);
    let assignments = bin_to_tiles(&grid, &projected);

    // Index projected splats by ID for per-tile lookups.
    let max_id = cloud.len();
    let mut by_id: Vec<Option<usize>> = vec![None; max_id];
    for (i, p) in projected.iter().enumerate() {
        by_id[p.id as usize] = Some(i);
    }

    let mut image = Image::new(cam.width, cam.height, config.background);
    let mut stats = FrameStats {
        input: cloud.len(),
        projected: projected.len(),
        duplicates: assignments.total_assignments(),
        occupied_tiles: assignments.occupied_tiles(),
        ..Default::default()
    };

    // Traffic accounting (reference = sort from scratch each frame):
    // features are read once per Gaussian for projection, per-tile entries
    // are written out and re-read by sorting and rasterization.
    let entry_bytes = 8u64;
    let feature_bytes = cloud.feature_record_bytes() as u64;
    stats
        .traffic
        .read(Stage::FeatureExtraction, cloud.len() as u64 * feature_bytes);
    stats.traffic.write(
        Stage::Sorting,
        assignments.total_assignments() as u64 * entry_bytes,
    );

    let mut scratch = RasterScratch::new();
    for (tile_index, entries) in assignments.iter_occupied() {
        // Sort from scratch: stable sort by depth.
        let mut order: Vec<&ProjectedGaussian> = entries
            .iter()
            .filter_map(|&(id, _)| by_id[id as usize].map(|i| &projected[i]))
            .collect();
        order.sort_by(|a, b| a.depth.total_cmp(&b.depth));

        // Sorting reads + writes the tile's entry list (single logical
        // pass; multi-pass costs are modelled in neo-sim, not here).
        let tile_bytes = entries.len() as u64 * entry_bytes;
        stats.traffic.read(Stage::Sorting, tile_bytes);
        stats.traffic.write(Stage::Sorting, tile_bytes);

        // Rasterization fetches each listed Gaussian's 2D features.
        stats
            .traffic
            .read(Stage::Rasterization, entries.len() as u64 * feature_bytes);

        let tile_stats =
            rasterize_tile_with_scratch(&mut scratch, &grid, tile_index, &order, config);
        scratch.blit_to(&mut image, &grid, tile_index);
        stats.blend_ops += tile_stats.blend_ops;
        stats.saturated_pixels += tile_stats.saturated_pixels;
    }
    // Final pixel writes.
    stats.traffic.write(
        Stage::Rasterization,
        cam.width as u64 * cam.height as u64 * 4,
    );

    (image, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_scene::{Gaussian, Resolution};

    fn cam(w: u32, h: u32) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            1.0,
            Resolution::Custom(w, h),
        )
    }

    fn red_blob() -> GaussianCloud {
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(
            Vec3::ZERO,
            0.3,
            0.95,
            Vec3::new(1.0, 0.0, 0.0),
        ));
        cloud
    }

    #[test]
    fn single_gaussian_renders_red_center() {
        let cam = cam(128, 128);
        let (img, stats) = render_reference(&red_blob(), &cam, &RenderConfig::default());
        let center = img.get(64, 64);
        assert!(center.x > 0.5, "center = {center}");
        assert!(center.y < 0.2);
        assert!(stats.blend_ops > 0);
        assert_eq!(stats.projected, 1);
    }

    #[test]
    fn empty_cloud_renders_background() {
        let cam = cam(64, 64);
        let cfg = RenderConfig {
            background: Vec3::new(0.0, 0.0, 1.0),
            ..Default::default()
        };
        let (img, stats) = render_reference(&GaussianCloud::new(), &cam, &cfg);
        assert_eq!(img.get(30, 30), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(stats.projected, 0);
        assert_eq!(stats.traffic.stage_total(Stage::Sorting), 0);
    }

    #[test]
    fn occlusion_front_wins() {
        let cam = cam(128, 128);
        let mut cloud = GaussianCloud::new();
        // Front (closer to camera at z=-5): red at z=-1 (depth 4).
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, -1.0),
            0.25,
            0.99,
            Vec3::new(1.0, 0.0, 0.0),
        ));
        // Back: green at z=+1 (depth 6).
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 1.0),
            0.25,
            0.99,
            Vec3::new(0.0, 1.0, 0.0),
        ));
        let (img, _) = render_reference(&cloud, &cam, &RenderConfig::default());
        let c = img.get(64, 64);
        assert!(c.x > c.y * 2.0, "front red must dominate: {c}");
    }

    #[test]
    fn subtiling_matches_full_raster() {
        let cam = cam(128, 128);
        let cloud = {
            let mut c = red_blob();
            c.push(Gaussian::isotropic(
                Vec3::new(0.8, 0.4, 0.0),
                0.1,
                0.8,
                Vec3::new(0.0, 1.0, 0.0),
            ));
            c
        };
        let (a, _) = render_reference(
            &cloud,
            &cam,
            &RenderConfig {
                subtiling: true,
                ..Default::default()
            },
        );
        let (b, _) = render_reference(
            &cloud,
            &cam,
            &RenderConfig {
                subtiling: false,
                ..Default::default()
            },
        );
        // Subtile skipping only skips pixels beyond 3σ where alpha < 1/255;
        // images should be nearly identical.
        let max_diff = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(p, q)| (*p - *q).abs().max_element())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 0.02, "max diff {max_diff}");
    }

    #[test]
    fn traffic_ledger_populated() {
        let cam = cam(128, 128);
        let (_, stats) = render_reference(&red_blob(), &cam, &RenderConfig::default());
        assert!(stats.traffic.stage_total(Stage::FeatureExtraction) > 0);
        assert!(stats.traffic.stage_total(Stage::Sorting) > 0);
        assert!(stats.traffic.stage_total(Stage::Rasterization) > 0);
    }

    #[test]
    fn saturation_early_exit_counts() {
        let cam = cam(64, 64);
        let mut cloud = GaussianCloud::new();
        // Stack several opaque Gaussians; pixels should saturate.
        for i in 0..8 {
            cloud.push(Gaussian::isotropic(
                Vec3::new(0.0, 0.0, i as f32 * 0.05),
                0.5,
                0.99,
                Vec3::ONE,
            ));
        }
        let (_, stats) = render_reference(&cloud, &cam, &RenderConfig::default());
        assert!(stats.saturated_pixels > 0);
    }
}
