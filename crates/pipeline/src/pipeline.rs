//! Stage ❹ (rasterization) and the reference end-to-end renderer.
//!
//! The reference renderer sorts each tile from scratch with a stable sort —
//! this is the "original 3DGS" behaviour that Neo's reuse-and-update
//! renderer (in `neo-core`) is compared against for image quality.

use crate::binning::bin_to_tiles;
use crate::framebuffer::Image;
use crate::projection::{project_storage, ProjectedGaussian};
use crate::scratch::RasterScratch;
use crate::stats::{FrameStats, Stage};
use crate::tiles::{subtile_bitmap, TileGrid, SUBTILE_SIZE};
use neo_math::num::{u64_from_usize, usize_from_u32};
use neo_math::{Vec2, Vec3};
use neo_scene::{Camera, CloudStorage};

/// Default transmittance threshold below which a pixel is considered
/// saturated and blending stops (the reference implementation's 1/255).
pub const DEFAULT_TRANSMITTANCE_EPS: f32 = 1.0 / 255.0;

/// Minimum α a splat must contribute for a pixel to be blended (the
/// reference rasterizer's 1/255 cutoff). Shared by the legacy per-pixel
/// loop, the exact-clipped fast path, and the cutoff-radius solver —
/// they must agree bit-for-bit on this constant.
const BLEND_ALPHA_CUTOFF: f32 = 1.0 / 255.0;

/// Configuration for the functional renderer.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderConfig {
    /// Tile edge in pixels (paper: 64).
    pub tile_size: u32,
    /// Background color.
    pub background: Vec3,
    /// Use subtile intersection bitmaps to skip non-overlapping subtiles
    /// (GSCore/Neo behaviour). Disabling rasterizes every pixel of a tile.
    pub subtiling: bool,
    /// Early-termination threshold on per-pixel transmittance. Lowering it
    /// towards zero approaches exhaustive blending (used as the
    /// "ground-truth" configuration in quality experiments).
    pub transmittance_eps: f32,
    /// Use the exact-clipped row-interval fast path (default `true`):
    /// each splat's true α-cutoff ellipse (the region where
    /// `alpha_at ≥ 1/255`) is solved per row and only those pixels are
    /// visited, instead of walking every pixel of the tile per splat.
    /// Output is **byte-identical** to the legacy per-pixel loop — only
    /// [`TileRasterStats::pixel_visits`] changes. Disable to run the
    /// legacy loop (the byte-identity baseline used by
    /// `tests/raster_parity.rs` and the `fig_raster` ablation).
    pub raster_fast_path: bool,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            tile_size: 64,
            background: Vec3::ZERO,
            subtiling: true,
            transmittance_eps: DEFAULT_TRANSMITTANCE_EPS,
            raster_fast_path: true,
        }
    }
}

/// Per-tile blending outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileRasterStats {
    /// α-blend operations performed.
    pub blend_ops: u64,
    /// Pixels that saturated before exhausting the Gaussian list.
    pub saturated_pixels: u64,
    /// Gaussians whose subtile bitmap was empty (no intersection at all) —
    /// these are the "outgoing" candidates Neo's ITU flags.
    pub zero_coverage: u64,
    /// (splat, pixel) pairs the blend loop visited — the raw work metric
    /// the exact-clipped fast path reduces. This is the **only** counter
    /// allowed to differ between [`RenderConfig::raster_fast_path`] on
    /// and off; everything else (and the image) is byte-identical.
    pub pixel_visits: u64,
}

/// Rasterizes one tile given its depth-ordered splats.
///
/// `ordered` must be sorted by ascending depth; the function blends
/// front-to-back with early termination and (optionally) subtile skipping.
///
/// This one-shot wrapper allocates fresh working buffers per call; hot
/// loops should hold a [`RasterScratch`] and call
/// [`rasterize_tile_with_scratch`] instead (byte-identical output).
pub fn rasterize_tile(
    image: &mut Image,
    grid: &TileGrid,
    tile_index: usize,
    ordered: &[&ProjectedGaussian],
    config: &RenderConfig,
) -> TileRasterStats {
    let mut scratch = RasterScratch::new();
    let stats = rasterize_tile_with_scratch(&mut scratch, grid, tile_index, ordered, config);
    scratch.blit_to(image, grid, tile_index);
    stats
}

/// Rasterizes one tile into `scratch`'s reusable buffers, leaving the
/// finished pixel block in the scratch instead of writing a framebuffer.
///
/// `ordered` must be sorted by ascending depth, exactly as for
/// [`rasterize_tile`]. The caller commits the block with
/// [`RasterScratch::blit_to`] (immediately for serial rendering, or after
/// a parallel frame's workers join — the deferred merge is what makes
/// sharded rendering deterministic).
pub fn rasterize_tile_with_scratch(
    scratch: &mut RasterScratch,
    grid: &TileGrid,
    tile_index: usize,
    ordered: &[&ProjectedGaussian],
    config: &RenderConfig,
) -> TileRasterStats {
    // neo-lint: allow(r1, "tile_index ranges over grid.tile_count(), a product of u32 tile coordinates; a valid index always fits u32")
    let tx = (tile_index as u32) % grid.tiles_x();
    // neo-lint: allow(r1, "tile_index ranges over grid.tile_count(), a product of u32 tile coordinates; a valid index always fits u32")
    let ty = (tile_index as u32) / grid.tiles_x();
    let (x0, y0, x1, y1) = grid.tile_rect(tx, ty);
    let mut stats = TileRasterStats::default();

    // Per-pixel transmittance and accumulated color for this tile, in
    // buffers reused across tiles and frames.
    let (tile_w, tile_h) = (x1 - x0, y1 - y0);
    let w = usize_from_u32(tile_w);
    let h = usize_from_u32(tile_h);
    let eps = config.transmittance_eps;
    scratch.width = w;
    scratch.height = h;
    scratch.transmittance.clear();
    scratch.transmittance.resize(w * h, 1.0);
    scratch.color.clear();
    scratch.color.resize(w * h, config.background);
    scratch.row_live.clear();
    scratch.row_live.resize(h, tile_w);
    let transmittance = &mut scratch.transmittance;
    let color = &mut scratch.color;
    let row_live = &mut scratch.row_live;
    let mut live_pixels = i64::from(tile_w) * i64::from(tile_h);
    let per_edge = grid.subtiles_per_edge();

    for p in ordered {
        if live_pixels <= 0 {
            break;
        }
        // Degenerate-splat guard: a non-finite opacity, conic, or center
        // makes `alpha_at` meaningless (a NaN intermediate is masked to
        // 0.99 by the `min` clamp), which would blend a garbage splat
        // over the whole tile. Skip it in both raster paths.
        if !p.opacity.is_finite()
            || !p.conic.0.is_finite()
            || !p.conic.1.is_finite()
            || !p.conic.2.is_finite()
            || !p.mean2d.is_finite()
        {
            continue;
        }
        // Precompute the bitmap when subtiling is on.
        let bitmap = if config.subtiling {
            let bm = subtile_bitmap(grid, tx, ty, p.mean2d, p.radius);
            if bm == 0 {
                stats.zero_coverage += 1;
                continue;
            }
            bm
        } else {
            u64::MAX
        };

        if config.raster_fast_path {
            // Exact-clipped fast path: visit only the pixels inside the
            // splat's (conservatively widened) α-cutoff ellipse, row by
            // row, skipping rows whose pixels have all saturated.
            let Some(ellipse) = CutoffEllipse::new(p, (x0, y0, x1, y1)) else {
                continue;
            };
            for py in ellipse.y_lo..ellipse.y_hi {
                if row_live[usize_from_u32(py - y0)] == 0 {
                    continue;
                }
                if let Some((lo, hi)) = ellipse.row_span(py, x0, x1) {
                    blend_row_span(
                        p,
                        py,
                        lo..hi,
                        (x0, y0),
                        w,
                        config.subtiling,
                        per_edge,
                        bitmap,
                        eps,
                        transmittance,
                        color,
                        row_live,
                        &mut stats,
                        &mut live_pixels,
                    );
                }
            }
        } else {
            // Legacy loop: every pixel of the tile, every splat. Kept as
            // the byte-identity baseline for the fast path.
            for py in y0..y1 {
                blend_row_span(
                    p,
                    py,
                    x0..x1,
                    (x0, y0),
                    w,
                    config.subtiling,
                    per_edge,
                    bitmap,
                    eps,
                    transmittance,
                    color,
                    row_live,
                    &mut stats,
                    &mut live_pixels,
                );
            }
        }
    }

    // Composite over the background using remaining transmittance. The
    // accumulation above already starts from background-colored pixels, so
    // we just need to scale the background by the transmittance actually
    // left: rewrite pixels as accumulated + T * background. To avoid double
    // counting we initialize color to ZERO-equivalent: fix up here.
    for py in y0..y1 {
        for px in x0..x1 {
            let li = usize_from_u32(py - y0) * w + usize_from_u32(px - x0);
            let t = transmittance[li];
            color[li] = color[li] - config.background + config.background * t;
        }
    }
    stats
}

/// Blends one splat over a contiguous pixel span of one tile row.
///
/// This is the *single* per-pixel blend body both raster paths execute:
/// the legacy loop calls it with the full row (`x0..x1`) and the fast
/// path with the clipped α-cutoff interval. Because every visited pixel
/// runs the exact same float operations in the same order, byte-identity
/// between the paths reduces to the fast path's interval being a superset
/// of the pixels that pass the α cutoff — which [`CutoffEllipse`]
/// guarantees.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn blend_row_span(
    p: &ProjectedGaussian,
    py: u32,
    px_range: std::ops::Range<u32>,
    origin: (u32, u32),
    w: usize,
    subtiling: bool,
    per_edge: u32,
    bitmap: u64,
    eps: f32,
    transmittance: &mut [f32],
    color: &mut [Vec3],
    row_live: &mut [u32],
    stats: &mut TileRasterStats,
    live_pixels: &mut i64,
) {
    let (x0, y0) = origin;
    let row = usize_from_u32(py - y0);
    for px in px_range {
        stats.pixel_visits += 1;
        let li = row * w + usize_from_u32(px - x0);
        let t = transmittance[li];
        if t < eps {
            continue;
        }
        if subtiling {
            let sx = (px - x0) / SUBTILE_SIZE;
            let sy = (py - y0) / SUBTILE_SIZE;
            let bit = sy * per_edge + sx;
            if bit < 64 && bitmap & (1u64 << bit) == 0 {
                continue;
            }
        }
        let pc = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
        let alpha = p.alpha_at(pc);
        if alpha < BLEND_ALPHA_CUTOFF {
            continue;
        }
        stats.blend_ops += 1;
        color[li] += p.color * (alpha * t);
        let nt = t * (1.0 - alpha);
        transmittance[li] = nt;
        if nt < eps {
            stats.saturated_pixels += 1;
            row_live[row] -= 1;
            *live_pixels -= 1;
        }
    }
}

/// Relative deflation of the conic used when widening the cutoff ellipse.
///
/// The blend loop evaluates the falloff exponent in `f32`; its absolute
/// rounding error is bounded by a small multiple of `f32::EPSILON` times
/// the magnitude of the quadratic-form terms `A·dx² + C·dy²` (≈ 10
/// roundings of intermediates no larger than 1.5× that sum). Shrinking
/// `A` and `C` by `2·KAPPA` widens the accepted region by exactly
/// `KAPPA`× those terms — a margin that *scales with* the evaluation
/// error instead of guessing a constant, with ~4× headroom over the
/// worst-case bound (10 × 2⁻²⁴ × 1.5 ≈ 9e-7).
const CUTOFF_KAPPA: f64 = 4e-6;

/// Absolute slack added to the log-opacity budget `τ = ln(255·opacity)`,
/// covering the `exp`/multiply rounding on the blend side (≲ 1e-6 in the
/// log domain) with two orders of magnitude to spare.
const CUTOFF_TAU_SLACK: f64 = 1e-4;

/// Extra pixels added on every side of the solved interval. The interval
/// endpoints are computed in `f64` (error ≪ 1 px); one pixel of slack
/// absorbs the floor/ceil edge cases outright.
const CUTOFF_PX_SLACK: f64 = 1.0;

/// The screen region where one splat can possibly blend, solved exactly
/// from its conic and opacity (then conservatively widened).
///
/// A pixel at center `q` blends iff `alpha_at(q) ≥ 1/255`, i.e. iff the
/// quadratic form `Q(d) = ½(A·dx² + C·dy²) + B·dx·dy` of `d = q − mean`
/// satisfies `Q(d) ≤ τ` with `τ = ln(255·opacity)`. Note the conservative
/// 3σ `radius` used for binning is *not* a valid clip for this: at 3σ the
/// falloff is `exp(−4.5) ≈ 2.8/255`, so a high-opacity splat still blends
/// well outside it. This solver instead widens the *exact* ellipse by
/// margins dominating the `f32` evaluation error of the blend loop
/// (see [`CUTOFF_KAPPA`]), so the row spans it yields are a strict
/// superset of the pixels the legacy loop would blend — that superset
/// property is what makes the fast path byte-identical.
struct CutoffEllipse {
    cx: f64,
    cy: f64,
    /// Deflated conic `(a, b, c)` for `[[a, b], [b, c]]`.
    a: f64,
    b: f64,
    /// `b² − a·c` (negative for a bounded ellipse), cached for row solves.
    b2_minus_ac: f64,
    /// `2τ` with slack applied.
    two_tau: f64,
    /// First candidate row (clamped to the tile rect).
    y_lo: u32,
    /// One past the last candidate row.
    y_hi: u32,
    /// Degenerate conic: fall back to full rows (legacy-equivalent).
    full_span: bool,
}

impl CutoffEllipse {
    /// Builds the solver for one splat over the tile rect
    /// `(x0, y0, x1, y1)`. Returns `None` when no pixel can reach the
    /// α cutoff (opacity below 1/255 — the blended α can never round
    /// above the opacity itself).
    fn new(p: &ProjectedGaussian, rect: (u32, u32, u32, u32)) -> Option<Self> {
        let (_, y0, _, y1) = rect;
        if p.opacity < BLEND_ALPHA_CUTOFF {
            return None;
        }
        let scale = 1.0 - 2.0 * CUTOFF_KAPPA;
        let a = scale * p.conic.0 as f64;
        let b = p.conic.1 as f64;
        let c = scale * p.conic.2 as f64;
        let cx = p.mean2d.x as f64;
        let cy = p.mean2d.y as f64;
        let tau = (p.opacity as f64 * 255.0).ln() + CUTOFF_TAU_SLACK;
        let det = a * c - b * b;
        let bounded = det > 0.0 && a > 0.0 && c > 0.0 && tau.is_finite();
        if !bounded {
            // Indefinite or near-degenerate conic (hand-built splats,
            // |B|² ≈ A·C within the deflation margin): no bounded
            // ellipse exists, so degrade to the legacy full-tile walk
            // for this splat. Conservative by construction.
            return Some(Self {
                cx,
                cy,
                a,
                b,
                b2_minus_ac: 0.0,
                two_tau: 0.0,
                y_lo: y0,
                y_hi: y1,
                full_span: true,
            });
        }
        // Extremal dy on the ellipse boundary: dy² ≤ 2τ·a / (a·c − b²).
        let dy_max = (2.0 * tau * a / det).sqrt() + CUTOFF_PX_SLACK;
        // neo-lint: allow(r1, "f64->u32 after clamp into [y0, y1], both u32 tile bounds; in range by construction and floats have no try_from")
        let y_lo = (cy - 0.5 - dy_max).floor().clamp(y0 as f64, y1 as f64) as u32;
        // neo-lint: allow(r1, "f64->u32 after clamp into [y_lo, y1], both u32 tile bounds; in range by construction and floats have no try_from")
        let y_hi = ((cy - 0.5 + dy_max).ceil() + 1.0).clamp(y_lo as f64, y1 as f64) as u32;
        Some(Self {
            cx,
            cy,
            a,
            b,
            b2_minus_ac: b * b - a * c,
            two_tau: 2.0 * tau,
            y_lo,
            y_hi,
            full_span: false,
        })
    }

    /// The candidate pixel span `[lo, hi)` of row `py`, clamped to the
    /// tile's `[x0, x1)`, or `None` when the row misses the ellipse.
    ///
    /// Solves `a·dx² + 2b·dy·dx + (c·dy² − 2τ) ≤ 0` for the row's fixed
    /// `dy`, then widens by [`CUTOFF_PX_SLACK`] on both sides.
    fn row_span(&self, py: u32, x0: u32, x1: u32) -> Option<(u32, u32)> {
        if self.full_span {
            return Some((x0, x1));
        }
        let dy = py as f64 + 0.5 - self.cy;
        let disc = self.b2_minus_ac * dy * dy + self.two_tau * self.a;
        if disc <= 0.0 {
            return None;
        }
        if !disc.is_finite() {
            // Overflowed intermediates: the solve is meaningless, so
            // degrade to the full row rather than risk clipping a pixel.
            return Some((x0, x1));
        }
        let half = disc.sqrt();
        let mid = -self.b * dy;
        let dx_lo = (mid - half) / self.a;
        let dx_hi = (mid + half) / self.a;
        let lo = (self.cx + dx_lo - 0.5 - CUTOFF_PX_SLACK)
            .floor()
            // neo-lint: allow(r1, "f64->u32 after clamp into [x0, x1], both u32 tile bounds; in range by construction and floats have no try_from")
            .clamp(x0 as f64, x1 as f64) as u32;
        let hi = ((self.cx + dx_hi - 0.5 + CUTOFF_PX_SLACK).ceil() + 1.0)
            // neo-lint: allow(r1, "f64->u32 after clamp into [lo, x1], both u32 tile bounds; in range by construction and floats have no try_from")
            .clamp(lo as f64, x1 as f64) as u32;
        (lo < hi).then_some((lo, hi))
    }
}

/// Renders one frame with the reference pipeline: cull+project, bin, sort
/// each tile from scratch (stable by depth), rasterize.
///
/// Returns the image and the frame statistics, including a DRAM-traffic
/// ledger computed with the same accounting rules the performance models
/// use (entries are 8 bytes: 4-byte ID + 4-byte depth key). Feature reads
/// are charged at the storage backend's actual record size
/// ([`CloudStorage::record_bytes`]) rather than a hardcoded f32 layout.
///
/// Accepts any storage backend; a plain `&GaussianCloud` coerces.
pub fn render_reference(
    cloud: &dyn CloudStorage,
    cam: &Camera,
    config: &RenderConfig,
) -> (Image, FrameStats) {
    let projected = project_storage(cam, cloud);
    let grid = TileGrid::new(cam.width, cam.height, config.tile_size);
    let assignments = bin_to_tiles(&grid, &projected);

    // Index projected splats by ID for per-tile lookups.
    let max_id = cloud.len();
    let mut by_id: Vec<Option<usize>> = vec![None; max_id];
    for (i, p) in projected.iter().enumerate() {
        by_id[usize_from_u32(p.id)] = Some(i);
    }

    let mut image = Image::new(cam.width, cam.height, config.background);
    let mut stats = FrameStats {
        input: cloud.len(),
        projected: projected.len(),
        duplicates: assignments.total_assignments(),
        occupied_tiles: assignments.occupied_tiles(),
        ..Default::default()
    };

    // Traffic accounting (reference = sort from scratch each frame):
    // features are read once per Gaussian for projection, per-tile entries
    // are written out and re-read by sorting and rasterization.
    let entry_bytes = 8u64;
    let feature_bytes = u64_from_usize(cloud.record_bytes());
    stats.traffic.read(
        Stage::FeatureExtraction,
        u64_from_usize(cloud.len()) * feature_bytes,
    );
    stats.traffic.write(
        Stage::Sorting,
        u64_from_usize(assignments.total_assignments()) * entry_bytes,
    );

    let mut scratch = RasterScratch::new();
    for (tile_index, entries) in assignments.iter_occupied() {
        // Sort from scratch: stable sort by depth.
        let mut order: Vec<&ProjectedGaussian> = entries
            .iter()
            .filter_map(|&(id, _)| by_id[usize_from_u32(id)].map(|i| &projected[i]))
            .collect();
        order.sort_by(|a, b| a.depth.total_cmp(&b.depth));

        // Sorting reads + writes the tile's entry list (single logical
        // pass; multi-pass costs are modelled in neo-sim, not here).
        let tile_bytes = u64_from_usize(entries.len()) * entry_bytes;
        stats.traffic.read(Stage::Sorting, tile_bytes);
        stats.traffic.write(Stage::Sorting, tile_bytes);

        // Rasterization fetches each listed Gaussian's 2D features.
        stats.traffic.read(
            Stage::Rasterization,
            u64_from_usize(entries.len()) * feature_bytes,
        );

        let tile_stats =
            rasterize_tile_with_scratch(&mut scratch, &grid, tile_index, &order, config);
        scratch.blit_to(&mut image, &grid, tile_index);
        stats.blend_ops += tile_stats.blend_ops;
        stats.saturated_pixels += tile_stats.saturated_pixels;
        stats.pixel_visits += tile_stats.pixel_visits;
    }
    // Final pixel writes.
    stats.traffic.write(
        Stage::Rasterization,
        u64::from(cam.width) * u64::from(cam.height) * 4,
    );

    (image, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_scene::{Gaussian, GaussianCloud, Resolution};

    fn cam(w: u32, h: u32) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            1.0,
            Resolution::Custom(w, h),
        )
    }

    fn red_blob() -> GaussianCloud {
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(
            Vec3::ZERO,
            0.3,
            0.95,
            Vec3::new(1.0, 0.0, 0.0),
        ));
        cloud
    }

    #[test]
    fn single_gaussian_renders_red_center() {
        let cam = cam(128, 128);
        let (img, stats) = render_reference(&red_blob(), &cam, &RenderConfig::default());
        let center = img.get(64, 64);
        assert!(center.x > 0.5, "center = {center}");
        assert!(center.y < 0.2);
        assert!(stats.blend_ops > 0);
        assert_eq!(stats.projected, 1);
    }

    #[test]
    fn empty_cloud_renders_background() {
        let cam = cam(64, 64);
        let cfg = RenderConfig {
            background: Vec3::new(0.0, 0.0, 1.0),
            ..Default::default()
        };
        let (img, stats) = render_reference(&GaussianCloud::new(), &cam, &cfg);
        assert_eq!(img.get(30, 30), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(stats.projected, 0);
        assert_eq!(stats.traffic.stage_total(Stage::Sorting), 0);
    }

    #[test]
    fn occlusion_front_wins() {
        let cam = cam(128, 128);
        let mut cloud = GaussianCloud::new();
        // Front (closer to camera at z=-5): red at z=-1 (depth 4).
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, -1.0),
            0.25,
            0.99,
            Vec3::new(1.0, 0.0, 0.0),
        ));
        // Back: green at z=+1 (depth 6).
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 1.0),
            0.25,
            0.99,
            Vec3::new(0.0, 1.0, 0.0),
        ));
        let (img, _) = render_reference(&cloud, &cam, &RenderConfig::default());
        let c = img.get(64, 64);
        assert!(c.x > c.y * 2.0, "front red must dominate: {c}");
    }

    #[test]
    fn subtiling_matches_full_raster() {
        let cam = cam(128, 128);
        let cloud = {
            let mut c = red_blob();
            c.push(Gaussian::isotropic(
                Vec3::new(0.8, 0.4, 0.0),
                0.1,
                0.8,
                Vec3::new(0.0, 1.0, 0.0),
            ));
            c
        };
        let (a, _) = render_reference(
            &cloud,
            &cam,
            &RenderConfig {
                subtiling: true,
                ..Default::default()
            },
        );
        let (b, _) = render_reference(
            &cloud,
            &cam,
            &RenderConfig {
                subtiling: false,
                ..Default::default()
            },
        );
        // Subtile skipping only skips pixels beyond 3σ where alpha < 1/255;
        // images should be nearly identical.
        let max_diff = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(p, q)| (*p - *q).abs().max_element())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 0.02, "max diff {max_diff}");
    }

    #[test]
    fn traffic_ledger_populated() {
        let cam = cam(128, 128);
        let (_, stats) = render_reference(&red_blob(), &cam, &RenderConfig::default());
        assert!(stats.traffic.stage_total(Stage::FeatureExtraction) > 0);
        assert!(stats.traffic.stage_total(Stage::Sorting) > 0);
        assert!(stats.traffic.stage_total(Stage::Rasterization) > 0);
    }

    // Whole-scene fast-vs-legacy parity lives in `tests/raster_parity.rs`
    // (run in debug and release by CI); the unit tests below pin the
    // solver's edge cases close to the code.

    #[test]
    fn fast_path_covers_low_opacity_and_cutoff_edge() {
        // Opacity exactly at, just below, and far above the 1/255 cutoff:
        // the interval solver's skip logic must agree with the legacy
        // per-pixel comparison bit-for-bit.
        let grid = TileGrid::new(64, 64, 64);
        for opacity in [1.0 / 255.0, 0.95 / 255.0, 0.0, 0.999, 2.0] {
            let splat = ProjectedGaussian {
                id: 0,
                mean2d: Vec2::new(31.5, 31.5),
                depth: 1.0,
                conic: (0.5, 0.0, 0.5),
                radius: 10.0,
                color: Vec3::ONE,
                opacity,
            };
            let legacy_cfg = RenderConfig {
                raster_fast_path: false,
                ..Default::default()
            };
            let mut legacy_img = Image::new(64, 64, Vec3::ZERO);
            let legacy = rasterize_tile(&mut legacy_img, &grid, 0, &[&splat], &legacy_cfg);
            let mut fast_img = Image::new(64, 64, Vec3::ZERO);
            let fast = rasterize_tile(&mut fast_img, &grid, 0, &[&splat], &RenderConfig::default());
            assert_eq!(legacy_img, fast_img, "opacity={opacity}");
            assert_eq!(legacy.blend_ops, fast.blend_ops, "opacity={opacity}");
            assert_eq!(legacy.saturated_pixels, fast.saturated_pixels);
        }
    }

    #[test]
    fn non_finite_splats_are_skipped_in_both_paths() {
        // A NaN opacity used to be masked to α = 0.99 by the `min` clamp
        // (Rust's `min` returns the non-NaN operand), blending a garbage
        // splat over the whole tile; non-finite conics likewise. Both
        // raster paths must skip such splats entirely.
        let grid = TileGrid::new(64, 64, 64);
        let good = ProjectedGaussian {
            id: 0,
            mean2d: Vec2::new(30.0, 30.0),
            depth: 1.0,
            conic: (0.05, 0.0, 0.05),
            radius: 20.0,
            color: Vec3::new(0.9, 0.2, 0.1),
            opacity: 0.9,
        };
        let poisoned = [
            ProjectedGaussian {
                opacity: f32::NAN,
                ..good
            },
            ProjectedGaussian {
                opacity: f32::INFINITY,
                ..good
            },
            ProjectedGaussian {
                conic: (f32::NAN, 0.0, 0.05),
                ..good
            },
            ProjectedGaussian {
                conic: (0.05, f32::NEG_INFINITY, 0.05),
                ..good
            },
            ProjectedGaussian {
                mean2d: Vec2::new(f32::NAN, 30.0),
                ..good
            },
        ];
        for fast in [true, false] {
            let cfg = RenderConfig {
                raster_fast_path: fast,
                ..Default::default()
            };
            let mut clean = Image::new(64, 64, Vec3::ZERO);
            let clean_stats = rasterize_tile(&mut clean, &grid, 0, &[&good], &cfg);
            for (i, bad) in poisoned.iter().enumerate() {
                let mut img = Image::new(64, 64, Vec3::ZERO);
                // Poisoned splat in front: must not affect the result.
                let stats = rasterize_tile(&mut img, &grid, 0, &[bad, &good], &cfg);
                assert_eq!(img, clean, "poisoned splat {i} leaked (fast={fast})");
                assert_eq!(
                    stats.blend_ops, clean_stats.blend_ops,
                    "poisoned splat {i} blended (fast={fast})"
                );
                assert!(img.pixels().iter().all(|p| p.is_finite()));
            }
        }
    }

    #[test]
    fn degenerate_scale_cloud_renders_finite() {
        // Degenerate-scale regression: a Gaussian whose covariance
        // overflows f32 is culled at projection, and a NaN-opacity
        // Gaussian is skipped by the blend-loop guard — neither may
        // poison the frame.
        let cam = cam(96, 96);
        let mut cloud = red_blob();
        let mut huge = Gaussian::isotropic(Vec3::ZERO, 0.2, 0.9, Vec3::ONE);
        huge.scale = Vec3::new(1e25, 1e25, 1e25);
        cloud.push(huge);
        let mut nan_opacity = Gaussian::isotropic(Vec3::new(0.1, 0.0, 0.0), 0.2, 0.9, Vec3::ONE);
        nan_opacity.opacity = f32::NAN;
        cloud.push(nan_opacity);

        let (img, stats) = render_reference(&cloud, &cam, &RenderConfig::default());
        assert!(img.pixels().iter().all(|p| p.is_finite()), "NaN leaked");
        let (clean_img, clean_stats) =
            render_reference(&red_blob(), &cam, &RenderConfig::default());
        assert_eq!(img, clean_img, "degenerate Gaussians changed the image");
        assert_eq!(stats.blend_ops, clean_stats.blend_ops);
    }

    #[test]
    fn saturation_early_exit_counts() {
        let cam = cam(64, 64);
        let mut cloud = GaussianCloud::new();
        // Stack several opaque Gaussians; pixels should saturate.
        for i in 0..8 {
            cloud.push(Gaussian::isotropic(
                Vec3::new(0.0, 0.0, i as f32 * 0.05),
                0.5,
                0.99,
                Vec3::ONE,
            ));
        }
        let (_, stats) = render_reference(&cloud, &cam, &RenderConfig::default());
        assert!(stats.saturated_pixels > 0);
    }
}
