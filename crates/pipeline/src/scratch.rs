//! Reusable rasterization scratch buffers.
//!
//! Rasterizing a tile needs per-pixel transmittance and color working
//! buffers, and the intra-frame parallel renderer in `neo-core`
//! additionally buffers each tile's finished pixel block so framebuffer
//! writes can be replayed deterministically *after* the workers join.
//! Allocating those buffers per tile (as the seed rasterizer did)
//! dominates small-tile render times, so both live in scratch types a
//! render session keeps across frames:
//!
//! * [`RasterScratch`] — one tile's working buffers; after
//!   [`crate::rasterize_tile_with_scratch`] returns it holds the tile's
//!   finished pixel block.
//! * [`ShardScratch`] — a worker's [`RasterScratch`] plus an arena of
//!   finished tile blocks awaiting the deterministic merge into the
//!   shared framebuffer.

use crate::framebuffer::Image;
use crate::pipeline::{rasterize_tile_with_scratch, RenderConfig, TileRasterStats};
use crate::projection::ProjectedGaussian;
use crate::tiles::TileGrid;
use neo_math::num::usize_from_u32;
use neo_math::Vec3;

/// Per-tile rasterization working buffers, reused across tiles and
/// frames.
///
/// After a [`crate::rasterize_tile_with_scratch`] call the scratch holds
/// the tile's finished pixel block ([`RasterScratch::pixels`], row-major
/// within the tile rect); [`RasterScratch::blit_to`] copies it into a
/// framebuffer. Reusing one scratch across a whole frame removes the two
/// per-tile heap allocations the one-shot [`crate::rasterize_tile`]
/// wrapper makes.
///
/// # Examples
///
/// ```
/// use neo_math::{Vec2, Vec3};
/// use neo_pipeline::{
///     rasterize_tile, rasterize_tile_with_scratch, Image, ProjectedGaussian, RasterScratch,
///     RenderConfig, TileGrid,
/// };
///
/// let grid = TileGrid::new(128, 64, 64);
/// let splat = ProjectedGaussian {
///     id: 0,
///     mean2d: Vec2::new(40.0, 30.0),
///     depth: 1.0,
///     conic: (0.02, 0.0, 0.02),
///     radius: 25.0,
///     color: Vec3::new(1.0, 0.5, 0.0),
///     opacity: 0.9,
/// };
/// let cfg = RenderConfig::default();
///
/// // Scratch-based rasterization + blit is byte-identical to the
/// // one-shot wrapper.
/// let mut scratch = RasterScratch::new();
/// let stats = rasterize_tile_with_scratch(&mut scratch, &grid, 0, &[&splat], &cfg);
/// let mut via_scratch = Image::new(128, 64, Vec3::ZERO);
/// scratch.blit_to(&mut via_scratch, &grid, 0);
///
/// let mut direct = Image::new(128, 64, Vec3::ZERO);
/// let direct_stats = rasterize_tile(&mut direct, &grid, 0, &[&splat], &cfg);
/// assert_eq!(via_scratch, direct);
/// assert_eq!(stats, direct_stats);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RasterScratch {
    /// Per-pixel remaining transmittance for the tile being rasterized.
    pub(crate) transmittance: Vec<f32>,
    /// Per-pixel accumulated color; holds the finished pixel block after
    /// rasterization.
    pub(crate) color: Vec<Vec3>,
    /// Per-row count of not-yet-saturated pixels, maintained by the blend
    /// loop. The exact-clipped fast path skips whole rows once this hits
    /// zero (the per-row analogue of the tile-level `live_pixels`
    /// early-out); the legacy loop maintains but never consults it.
    pub(crate) row_live: Vec<u32>,
    /// Width in pixels of the last rasterized tile rect.
    pub(crate) width: usize,
    /// Height in pixels of the last rasterized tile rect.
    pub(crate) height: usize,
}

impl RasterScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The finished pixel block of the last rasterized tile, row-major
    /// within the tile rect (empty before the first rasterization).
    pub fn pixels(&self) -> &[Vec3] {
        &self.color
    }

    /// Width in pixels of the last rasterized tile rect.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels of the last rasterized tile rect.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Copies the finished pixel block into `image` at `tile_index`'s
    /// rect.
    ///
    /// # Panics
    ///
    /// Panics when the scratch holds no block for the tile's rect
    /// dimensions (i.e. the last rasterization used a different tile
    /// shape) or the rect is out of the image's bounds.
    pub fn blit_to(&self, image: &mut Image, grid: &TileGrid, tile_index: usize) {
        let (x0, y0, x1, y1) = grid.tile_rect_at(tile_index);
        // neo-lint: allow(r2, "documented `# Panics` contract: a mismatched block/rect shape would blit garbage pixels")
        assert!(
            self.width == usize_from_u32(x1 - x0) && self.height == usize_from_u32(y1 - y0),
            "scratch block {}x{} does not match tile rect {}x{}",
            self.width,
            self.height,
            x1 - x0,
            y1 - y0
        );
        image.blit_region(x0, y0, x1 - x0, y1 - y0, &self.color);
    }
}

/// One buffered tile block inside a [`ShardScratch`] arena.
#[derive(Debug, Clone, Copy)]
struct TileSpan {
    tile_index: usize,
    offset: usize,
    width: usize,
    height: usize,
}

/// A render worker's frame-local output: per-tile working buffers plus an
/// arena of finished tile pixel blocks.
///
/// The intra-frame parallel renderer gives each worker (shard) one
/// `ShardScratch`. Workers rasterize their tiles into the arena with
/// [`ShardScratch::rasterize`]; after all workers join, the main thread
/// replays every shard's blocks into the shared framebuffer with
/// [`ShardScratch::blit_to`] — tiles own disjoint pixel rects, so the
/// merged image is byte-identical to serial rasterization regardless of
/// how tiles were sharded. All buffers are reused across frames
/// ([`ShardScratch::begin_frame`] only resets lengths, keeping capacity).
///
/// # Examples
///
/// ```
/// use neo_math::{Vec2, Vec3};
/// use neo_pipeline::{rasterize_tile, Image, ProjectedGaussian, RenderConfig, ShardScratch, TileGrid};
///
/// let grid = TileGrid::new(128, 64, 64);
/// let splat = ProjectedGaussian {
///     id: 0,
///     mean2d: Vec2::new(70.0, 30.0),
///     depth: 1.0,
///     conic: (0.02, 0.0, 0.02),
///     radius: 40.0,
///     color: Vec3::new(0.2, 0.9, 0.4),
///     opacity: 0.9,
/// };
/// let cfg = RenderConfig::default();
///
/// // A worker rasterizes both tiles into its arena...
/// let mut scratch = ShardScratch::new();
/// scratch.begin_frame();
/// scratch.rasterize(&grid, 0, &[&splat], &cfg);
/// scratch.rasterize(&grid, 1, &[&splat], &cfg);
/// assert_eq!(scratch.buffered_tiles(), 2);
///
/// // ...and the deferred merge matches direct rasterization exactly.
/// let mut merged = Image::new(128, 64, Vec3::ZERO);
/// scratch.blit_to(&mut merged, &grid);
/// let mut direct = Image::new(128, 64, Vec3::ZERO);
/// rasterize_tile(&mut direct, &grid, 0, &[&splat], &cfg);
/// rasterize_tile(&mut direct, &grid, 1, &[&splat], &cfg);
/// assert_eq!(merged, direct);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardScratch {
    raster: RasterScratch,
    blocks: Vec<Vec3>,
    spans: Vec<TileSpan>,
}

impl ShardScratch {
    /// Creates an empty shard scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the arena for a new frame, keeping all allocated capacity.
    pub fn begin_frame(&mut self) {
        self.blocks.clear();
        self.spans.clear();
    }

    /// Rasterizes one tile and appends its finished pixel block to the
    /// arena.
    ///
    /// `ordered` must be sorted by ascending depth, exactly as for
    /// [`crate::rasterize_tile`].
    pub fn rasterize(
        &mut self,
        grid: &TileGrid,
        tile_index: usize,
        ordered: &[&ProjectedGaussian],
        config: &RenderConfig,
    ) -> TileRasterStats {
        let stats =
            rasterize_tile_with_scratch(&mut self.raster, grid, tile_index, ordered, config);
        let offset = self.blocks.len();
        self.blocks.extend_from_slice(self.raster.pixels());
        self.spans.push(TileSpan {
            tile_index,
            offset,
            width: self.raster.width(),
            height: self.raster.height(),
        });
        stats
    }

    /// Rasterizes one tile and immediately blits it into `image`,
    /// bypassing the deferred-merge arena.
    ///
    /// This is the serial fast path: when one thread owns the whole
    /// frame there is nothing to merge, so buffering blocks would only
    /// add a copy and retain a frame-sized arena. The working buffers
    /// are still reused across tiles and frames.
    pub fn rasterize_direct(
        &mut self,
        image: &mut Image,
        grid: &TileGrid,
        tile_index: usize,
        ordered: &[&ProjectedGaussian],
        config: &RenderConfig,
    ) -> TileRasterStats {
        let stats =
            rasterize_tile_with_scratch(&mut self.raster, grid, tile_index, ordered, config);
        self.raster.blit_to(image, grid, tile_index);
        stats
    }

    /// Number of tile blocks buffered since the last
    /// [`ShardScratch::begin_frame`].
    pub fn buffered_tiles(&self) -> usize {
        self.spans.len()
    }

    /// Copies every buffered tile block into `image`, in the order the
    /// tiles were rasterized.
    ///
    /// # Panics
    ///
    /// Panics when a buffered block's rect falls outside `image` (the
    /// grid must match the one the blocks were rasterized against).
    pub fn blit_to(&self, image: &mut Image, grid: &TileGrid) {
        for span in &self.spans {
            let (x0, y0, _, _) = grid.tile_rect_at(span.tile_index);
            let len = span.width * span.height;
            image.blit_region(
                x0,
                y0,
                // Tile dims come from u32 rects, so the round-trip through
                // usize cannot saturate.
                u32::try_from(span.width).unwrap_or(u32::MAX),
                u32::try_from(span.height).unwrap_or(u32::MAX),
                &self.blocks[span.offset..span.offset + len],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::rasterize_tile;
    use neo_math::Vec2;

    fn splat(x: f32, y: f32, radius: f32) -> ProjectedGaussian {
        ProjectedGaussian {
            id: 0,
            mean2d: Vec2::new(x, y),
            depth: 1.0,
            conic: (0.02, 0.0, 0.02),
            radius,
            color: Vec3::new(0.9, 0.3, 0.1),
            opacity: 0.95,
        }
    }

    #[test]
    fn scratch_reuse_matches_one_shot_wrapper() {
        let grid = TileGrid::new(100, 70, 64); // border tiles are clipped
        let cfg = RenderConfig::default();
        let s0 = splat(60.0, 30.0, 30.0);
        let s1 = splat(70.0, 66.0, 20.0);
        let mut scratch = RasterScratch::new();
        let mut via_scratch = Image::new(100, 70, Vec3::ZERO);
        let mut direct = Image::new(100, 70, Vec3::ZERO);
        for tile in 0..grid.tile_count() {
            let a = rasterize_tile_with_scratch(&mut scratch, &grid, tile, &[&s0, &s1], &cfg);
            scratch.blit_to(&mut via_scratch, &grid, tile);
            let b = rasterize_tile(&mut direct, &grid, tile, &[&s0, &s1], &cfg);
            assert_eq!(a, b, "tile {tile}");
        }
        assert_eq!(via_scratch, direct);
    }

    #[test]
    fn shard_arena_reuses_capacity_across_frames() {
        let grid = TileGrid::new(128, 128, 64);
        let cfg = RenderConfig::default();
        let s = splat(64.0, 64.0, 50.0);
        let mut scratch = ShardScratch::new();
        scratch.begin_frame();
        for tile in 0..grid.tile_count() {
            scratch.rasterize(&grid, tile, &[&s], &cfg);
        }
        assert_eq!(scratch.buffered_tiles(), 4);
        let cap = scratch.blocks.capacity();
        scratch.begin_frame();
        assert_eq!(scratch.buffered_tiles(), 0);
        for tile in 0..grid.tile_count() {
            scratch.rasterize(&grid, tile, &[&s], &cfg);
        }
        assert_eq!(scratch.blocks.capacity(), cap, "no per-frame reallocation");
    }

    #[test]
    fn direct_rasterization_bypasses_the_arena() {
        let grid = TileGrid::new(128, 64, 64);
        let cfg = RenderConfig::default();
        let s = splat(64.0, 32.0, 40.0);
        let mut scratch = ShardScratch::new();
        let mut via_direct = Image::new(128, 64, Vec3::ZERO);
        let a0 = scratch.rasterize_direct(&mut via_direct, &grid, 0, &[&s], &cfg);
        let a1 = scratch.rasterize_direct(&mut via_direct, &grid, 1, &[&s], &cfg);
        assert_eq!(scratch.buffered_tiles(), 0, "no blocks buffered");

        let mut direct = Image::new(128, 64, Vec3::ZERO);
        let b0 = rasterize_tile(&mut direct, &grid, 0, &[&s], &cfg);
        let b1 = rasterize_tile(&mut direct, &grid, 1, &[&s], &cfg);
        assert_eq!(via_direct, direct);
        assert_eq!((a0, a1), (b0, b1));
    }

    #[test]
    #[should_panic(expected = "does not match tile rect")]
    fn stale_block_shape_is_rejected() {
        let grid = TileGrid::new(100, 70, 64);
        let cfg = RenderConfig::default();
        let s = splat(30.0, 30.0, 10.0);
        let mut scratch = RasterScratch::new();
        // Rasterize the full 64x64 tile 0, then try to blit it as the
        // clipped border tile 1.
        rasterize_tile_with_scratch(&mut scratch, &grid, 0, &[&s], &cfg);
        let mut img = Image::new(100, 70, Vec3::ZERO);
        scratch.blit_to(&mut img, &grid, 1);
    }
}
