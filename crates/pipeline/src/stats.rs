//! Pipeline-stage bookkeeping: stage labels, DRAM-traffic ledger, and
//! per-frame statistics.
//!
//! Every component that touches (modelled) off-chip memory charges bytes to
//! a [`TrafficLedger`]; the performance models in `neo-sim` convert ledgers
//! into latency. This mirrors the paper's methodology of attributing DRAM
//! traffic to the pipeline stages (Figure 5).

use std::fmt;
use std::ops::{Add, AddAssign};

/// The 3DGS pipeline stages used for traffic attribution.
///
/// Frustum culling and feature extraction are merged in the paper's traffic
/// breakdowns ("Feature Extraction"), so the ledger uses three buckets plus
/// a catch-all for table metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// ❶+❷ Frustum culling and feature extraction (projection, SH color).
    FeatureExtraction,
    /// ❸ Depth sorting, including Gaussian-table reads/writes.
    Sorting,
    /// ❹ α-blending rasterization (feature fetches, pixel writes).
    Rasterization,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 3] = [
        Stage::FeatureExtraction,
        Stage::Sorting,
        Stage::Rasterization,
    ];

    /// Stage name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Stage::FeatureExtraction => "Feature Extraction",
            Stage::Sorting => "Sorting",
            Stage::Rasterization => "Rasterization",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::FeatureExtraction => 0,
            Stage::Sorting => 1,
            Stage::Rasterization => 2,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-stage DRAM read/write byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    reads: [u64; 3],
    writes: [u64; 3],
}

impl TrafficLedger {
    /// A ledger with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `bytes` of DRAM reads to `stage`.
    pub fn read(&mut self, stage: Stage, bytes: u64) {
        self.reads[stage.index()] += bytes;
    }

    /// Charges `bytes` of DRAM writes to `stage`.
    pub fn write(&mut self, stage: Stage, bytes: u64) {
        self.writes[stage.index()] += bytes;
    }

    /// Read bytes charged to `stage`.
    pub fn reads(&self, stage: Stage) -> u64 {
        self.reads[stage.index()]
    }

    /// Write bytes charged to `stage`.
    pub fn writes(&self, stage: Stage) -> u64 {
        self.writes[stage.index()]
    }

    /// Total (read + write) bytes for `stage`.
    pub fn stage_total(&self, stage: Stage) -> u64 {
        self.reads(stage) + self.writes(stage)
    }

    /// Total bytes across all stages.
    pub fn total(&self) -> u64 {
        Stage::ALL.iter().map(|&s| self.stage_total(s)).sum()
    }

    /// Fraction of total traffic attributable to `stage` (0 when empty).
    pub fn stage_fraction(&self, stage: Stage) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.stage_total(stage) as f64 / total as f64
        }
    }
}

impl Add for TrafficLedger {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for TrafficLedger {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..3 {
            self.reads[i] += rhs.reads[i];
            self.writes[i] += rhs.writes[i];
        }
    }
}

/// Counters summarizing one rendered frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameStats {
    /// Gaussians in the input cloud.
    pub input: usize,
    /// Gaussians surviving frustum culling.
    pub projected: usize,
    /// Total tile assignments after duplication (Σ per-tile counts).
    pub duplicates: usize,
    /// Tiles with at least one Gaussian.
    pub occupied_tiles: usize,
    /// α-blend operations performed during rasterization.
    pub blend_ops: u64,
    /// Pixels that saturated (early-terminated) during blending.
    pub saturated_pixels: u64,
    /// (splat, pixel) pairs visited by the rasterizer's blend loop — the
    /// work metric the exact-clipped row-interval fast path reduces
    /// (see [`crate::RenderConfig::raster_fast_path`]). The only frame
    /// statistic allowed to differ between the fast path and the legacy
    /// per-pixel loop.
    pub pixel_visits: u64,
    /// DRAM traffic attributed to this frame.
    pub traffic: TrafficLedger,
    /// Clusters in the spatial index consulted this frame (0 when the
    /// LOD path is disabled — the flat walk consults no index).
    pub clusters_total: u64,
    /// Clusters rejected by whole-cluster frustum culling.
    pub clusters_culled: u64,
    /// Clusters rendered from merged LOD proxies instead of members.
    pub clusters_lod: u64,
    /// Member splats whose per-splat projection was skipped thanks to
    /// the cluster index (culled-cluster members plus the
    /// member-minus-proxy surplus of proxied clusters).
    pub lod_splats_saved: u64,
}

impl FrameStats {
    /// Mean number of Gaussians per occupied tile.
    pub fn mean_tile_population(&self) -> f64 {
        if self.occupied_tiles == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.occupied_tiles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_stage() {
        let mut l = TrafficLedger::new();
        l.read(Stage::Sorting, 100);
        l.write(Stage::Sorting, 50);
        l.read(Stage::Rasterization, 10);
        assert_eq!(l.stage_total(Stage::Sorting), 150);
        assert_eq!(l.stage_total(Stage::Rasterization), 10);
        assert_eq!(l.total(), 160);
        assert!((l.stage_fraction(Stage::Sorting) - 150.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_fraction_is_zero() {
        let l = TrafficLedger::new();
        assert_eq!(l.stage_fraction(Stage::Sorting), 0.0);
        assert_eq!(l.total(), 0);
    }

    #[test]
    fn ledgers_add() {
        let mut a = TrafficLedger::new();
        a.read(Stage::FeatureExtraction, 5);
        let mut b = TrafficLedger::new();
        b.write(Stage::FeatureExtraction, 7);
        let c = a + b;
        assert_eq!(c.stage_total(Stage::FeatureExtraction), 12);
    }

    #[test]
    fn stage_names_match_paper() {
        assert_eq!(Stage::Sorting.to_string(), "Sorting");
        assert_eq!(Stage::ALL.len(), 3);
    }

    #[test]
    fn mean_tile_population() {
        let stats = FrameStats {
            duplicates: 100,
            occupied_tiles: 4,
            ..Default::default()
        };
        assert_eq!(stats.mean_tile_population(), 25.0);
        assert_eq!(FrameStats::default().mean_tile_population(), 0.0);
    }
}
