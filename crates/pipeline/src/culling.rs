//! Stage ❶: frustum culling.

use neo_math::Vec3;
use neo_scene::{Camera, GaussianCloud};

/// Conservative frustum test for a bounding sphere in *camera space*.
///
/// `t` is the camera-space center, `radius` the world-space bounding
/// radius (camera transforms are rigid, so lengths are preserved). The test
/// checks the near/far planes and the four side planes derived from the
/// fields of view, each relaxed by `radius`.
pub fn in_frustum(cam: &Camera, t: Vec3, radius: f32) -> bool {
    if t.z + radius < cam.near || t.z - radius > cam.far {
        return false;
    }
    // Side planes: |x| <= z·tan(fovx/2) + slack, similarly for y. Use the
    // sphere radius as slack (conservative, cheap — same test GSCore's
    // projection unit applies).
    let z = t.z.max(cam.near);
    let tan_x = (cam.fov_x() * 0.5).tan();
    let tan_y = (cam.fov_y * 0.5).tan();
    t.x.abs() <= z * tan_x + radius && t.y.abs() <= z * tan_y + radius
}

/// Outcome of culling a cloud against a camera.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CullResult {
    /// IDs of Gaussians that survive culling, ascending.
    pub visible: Vec<u32>,
    /// Number of Gaussians culled.
    pub culled: usize,
}

impl CullResult {
    /// Fraction of the cloud that survived.
    pub fn survival_rate(&self) -> f64 {
        let total = self.visible.len() + self.culled;
        if total == 0 {
            0.0
        } else {
            self.visible.len() as f64 / total as f64
        }
    }
}

/// Culls an entire cloud, returning surviving IDs.
pub fn cull_cloud(cam: &Camera, cloud: &GaussianCloud) -> CullResult {
    let view = cam.view_matrix();
    let mut visible = Vec::with_capacity(cloud.len());
    for (id, g) in cloud.iter() {
        let t = view.transform_point(g.mean);
        if in_frustum(cam, t, g.bounding_radius()) {
            visible.push(id);
        }
    }
    let culled = cloud.len() - visible.len();
    CullResult { visible, culled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_scene::{Gaussian, Resolution};

    fn cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            1.0,
            Resolution::Hd,
        )
    }

    #[test]
    fn center_is_visible() {
        let c = cam();
        assert!(in_frustum(&c, Vec3::new(0.0, 0.0, 5.0), 0.1));
    }

    #[test]
    fn behind_near_plane_is_culled() {
        let c = cam();
        assert!(!in_frustum(&c, Vec3::new(0.0, 0.0, -1.0), 0.1));
        // ... unless the bounding sphere pokes through the near plane.
        assert!(in_frustum(&c, Vec3::new(0.0, 0.0, -1.0), 2.0));
    }

    #[test]
    fn beyond_far_plane_is_culled() {
        let mut c = cam();
        c.far = 100.0;
        assert!(!in_frustum(&c, Vec3::new(0.0, 0.0, 150.0), 1.0));
    }

    #[test]
    fn side_planes_respect_radius() {
        let c = cam();
        let z = 5.0;
        let limit = z * (c.fov_x() * 0.5).tan();
        assert!(!in_frustum(&c, Vec3::new(limit + 1.0, 0.0, z), 0.5));
        assert!(in_frustum(&c, Vec3::new(limit + 1.0, 0.0, z), 2.0));
    }

    #[test]
    fn cull_cloud_counts() {
        let c = cam();
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(Vec3::ZERO, 0.1, 0.9, Vec3::ONE)); // visible
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, -30.0),
            0.1,
            0.9,
            Vec3::ONE,
        )); // behind
        cloud.push(Gaussian::isotropic(
            Vec3::new(50.0, 0.0, 0.0),
            0.1,
            0.9,
            Vec3::ONE,
        )); // side
        let r = cull_cloud(&c, &cloud);
        assert_eq!(r.visible, vec![0]);
        assert_eq!(r.culled, 2);
        assert!((r.survival_rate() - 1.0 / 3.0).abs() < 1e-9);
    }
}
