//! Feature extraction: EWA projection of 3D Gaussians to screen-space
//! splats, plus view-dependent color evaluation.
//!
//! Follows the reference 3DGS math (Kerbl et al. 2023 / Zwicker's EWA
//! splatting): the 3D covariance is transformed into camera space, the
//! perspective projection is linearized with its Jacobian, and the
//! resulting 2D covariance yields a conic and a 3σ bounding radius.

use crate::culling::in_frustum;
use neo_math::{Mat3, Vec2, Vec3};
use neo_scene::{Camera, CloudStorage, Gaussian, GaussianCloud};

/// Low-pass dilation added to the 2D covariance diagonal (antialiasing),
/// matching the reference implementation's 0.3 px².
const COV2D_DILATION: f32 = 0.3;

/// A Gaussian projected to the image plane — the per-Gaussian record the
/// rasterizer consumes (the "2D Gaussian features" of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedGaussian {
    /// ID (index) of the source Gaussian in the cloud.
    pub id: u32,
    /// Splat center in pixel coordinates.
    pub mean2d: Vec2,
    /// Camera-space depth (used as the sort key).
    pub depth: f32,
    /// Inverse 2D covariance, packed `(a, b, c)` for `[[a, b], [b, c]]`.
    pub conic: (f32, f32, f32),
    /// Conservative splat radius in pixels (3σ of the major axis).
    pub radius: f32,
    /// View-dependent RGB color.
    pub color: Vec3,
    /// Base opacity.
    pub opacity: f32,
}

impl ProjectedGaussian {
    /// Gaussian falloff weight at pixel `p` (the exponent term of Eq. 1
    /// restricted to the image plane).
    #[inline]
    pub fn falloff(&self, p: Vec2) -> f32 {
        let d = p - self.mean2d;
        let power =
            -0.5 * (self.conic.0 * d.x * d.x + self.conic.2 * d.y * d.y) - self.conic.1 * d.x * d.y;
        if power > 0.0 {
            // Numerical guard: conic must be PSD; clamp tiny violations.
            return 1.0;
        }
        power.exp()
    }

    /// Effective α contribution at pixel `p`, clamped to 0.99 like the
    /// reference rasterizer.
    #[inline]
    pub fn alpha_at(&self, p: Vec2) -> f32 {
        (self.opacity * self.falloff(p)).min(0.99)
    }
}

/// Projects a single Gaussian, returning `None` when culled.
///
/// Culling folds in the paper's stage ❶: Gaussians behind the near plane,
/// beyond the far plane, or projecting entirely off-screen are discarded.
pub fn project_gaussian(cam: &Camera, id: u32, g: &Gaussian) -> Option<ProjectedGaussian> {
    let view = cam.view_matrix();
    project_gaussian_with_view(cam, &view, id, g)
}

/// [`project_gaussian`] with a precomputed view matrix (hot path: the view
/// matrix is shared by every Gaussian of a frame).
pub fn project_gaussian_with_view(
    cam: &Camera,
    view: &neo_math::Mat4,
    id: u32,
    g: &Gaussian,
) -> Option<ProjectedGaussian> {
    let t = view.transform_point(g.mean);
    if !in_frustum(cam, t, g.bounding_radius()) {
        return None;
    }

    let focal = cam.focal();
    let mean2d = cam.camera_to_pixel(t)?;

    // Jacobian of the perspective projection at t (2×3, embedded in 3×3
    // with a zero third row).
    let inv_z = 1.0 / t.z;
    let inv_z2 = inv_z * inv_z;
    let j = Mat3::from_rows(
        Vec3::new(focal.x * inv_z, 0.0, -focal.x * t.x * inv_z2),
        Vec3::new(0.0, focal.y * inv_z, -focal.y * t.y * inv_z2),
        Vec3::ZERO,
    );
    let w = view.to_mat3();
    let cov_cam = w * g.covariance() * w.transpose();
    let cov2d_full = j * cov_cam * j.transpose();

    let a = cov2d_full.get(0, 0) + COV2D_DILATION;
    let b = cov2d_full.get(0, 1);
    let c = cov2d_full.get(1, 1) + COV2D_DILATION;

    let det = a * c - b * b;
    if det <= 0.0 || !det.is_finite() {
        return None;
    }
    let inv_det = 1.0 / det;
    let conic = (c * inv_det, -b * inv_det, a * inv_det);

    // 3σ radius from the larger eigenvalue of the 2D covariance.
    let mid = 0.5 * (a + c);
    let lambda_max = mid + (mid * mid - det).max(0.01).sqrt();
    let radius = (3.0 * lambda_max.sqrt()).ceil();

    // Entirely off-screen splats are dropped here; per-tile overlap is
    // decided later by the binning stage.
    if mean2d.x + radius < 0.0
        || mean2d.y + radius < 0.0
        || mean2d.x - radius >= cam.width as f32
        || mean2d.y - radius >= cam.height as f32
    {
        return None;
    }

    let color = g.sh.eval(cam.view_direction(g.mean));

    Some(ProjectedGaussian {
        id,
        mean2d,
        depth: t.z,
        conic,
        radius,
        color,
        opacity: g.opacity,
    })
}

/// Projects every Gaussian of a cloud, skipping culled ones.
///
/// Output order matches cloud order (IDs ascending), which downstream
/// stages rely on for deterministic binning.
pub fn project_cloud(cam: &Camera, cloud: &GaussianCloud) -> Vec<ProjectedGaussian> {
    let view = cam.view_matrix();
    cloud
        .iter()
        .filter_map(|(id, g)| project_gaussian_with_view(cam, &view, id, g))
        .collect()
}

/// [`project_cloud`] over any [`CloudStorage`] backend: packed records
/// are decoded on the fly, and the output order still matches storage
/// order (IDs ascending).
///
/// For the AoS backend this performs exactly the same arithmetic on
/// exactly the same f32 values as [`project_cloud`], so results are
/// bit-identical.
pub fn project_storage(cam: &Camera, storage: &dyn CloudStorage) -> Vec<ProjectedGaussian> {
    let view = cam.view_matrix();
    let mut out = Vec::new();
    storage.visit(&mut |id, g| {
        if let Some(p) = project_gaussian_with_view(cam, &view, id, g) {
            out.push(p);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_scene::Resolution;

    fn test_camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::Y,
            1.0,
            Resolution::Custom(640, 360),
        )
    }

    #[test]
    fn centered_gaussian_projects_to_image_center() {
        let cam = test_camera();
        let g = Gaussian::isotropic(Vec3::ZERO, 0.1, 0.9, Vec3::ONE);
        let p = project_gaussian(&cam, 7, &g).unwrap();
        assert_eq!(p.id, 7);
        assert!((p.mean2d.x - 320.0).abs() < 0.5);
        assert!((p.mean2d.y - 180.0).abs() < 0.5);
        assert!((p.depth - 5.0).abs() < 1e-3);
        assert!(p.radius >= 1.0);
    }

    #[test]
    fn behind_camera_is_culled() {
        let cam = test_camera();
        let g = Gaussian::isotropic(Vec3::new(0.0, 0.0, -20.0), 0.1, 0.9, Vec3::ONE);
        assert!(project_gaussian(&cam, 0, &g).is_none());
    }

    #[test]
    fn far_off_screen_is_culled() {
        let cam = test_camera();
        let g = Gaussian::isotropic(Vec3::new(100.0, 0.0, 0.0), 0.05, 0.9, Vec3::ONE);
        assert!(project_gaussian(&cam, 0, &g).is_none());
    }

    #[test]
    fn closer_gaussian_has_bigger_splat() {
        let cam = test_camera();
        let near = Gaussian::isotropic(Vec3::new(0.0, 0.0, -2.0), 0.1, 0.9, Vec3::ONE);
        let far = Gaussian::isotropic(Vec3::new(0.0, 0.0, 3.0), 0.1, 0.9, Vec3::ONE);
        let pn = project_gaussian(&cam, 0, &near).unwrap();
        let pf = project_gaussian(&cam, 1, &far).unwrap();
        assert!(
            pn.radius > pf.radius,
            "near {} vs far {}",
            pn.radius,
            pf.radius
        );
        assert!(pn.depth < pf.depth);
    }

    #[test]
    fn falloff_peaks_at_center() {
        let cam = test_camera();
        let g = Gaussian::isotropic(Vec3::ZERO, 0.2, 0.8, Vec3::ONE);
        let p = project_gaussian(&cam, 0, &g).unwrap();
        let at_center = p.falloff(p.mean2d);
        let off = p.falloff(p.mean2d + Vec2::new(p.radius, 0.0));
        assert!((at_center - 1.0).abs() < 1e-4);
        assert!(off < 0.05, "3σ falloff should be tiny, got {off}");
        assert!(p.alpha_at(p.mean2d) <= 0.99);
    }

    #[test]
    fn anisotropic_gaussian_has_anisotropic_conic() {
        let cam = test_camera();
        let mut g = Gaussian::isotropic(Vec3::ZERO, 0.05, 0.9, Vec3::ONE);
        g.scale = Vec3::new(0.5, 0.05, 0.05);
        let p = project_gaussian(&cam, 0, &g).unwrap();
        // X-elongated in world (camera x axis is ∓X): falloff decays slower
        // along image x than image y.
        let fx = p.falloff(p.mean2d + Vec2::new(10.0, 0.0));
        let fy = p.falloff(p.mean2d + Vec2::new(0.0, 10.0));
        assert!(fx > fy, "fx={fx}, fy={fy}");
    }

    #[test]
    fn project_cloud_filters_and_preserves_order() {
        let cam = test_camera();
        let mut cloud = GaussianCloud::new();
        cloud.push(Gaussian::isotropic(Vec3::ZERO, 0.1, 0.9, Vec3::ONE));
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.0, 0.0, -20.0),
            0.1,
            0.9,
            Vec3::ONE,
        ));
        cloud.push(Gaussian::isotropic(
            Vec3::new(0.5, 0.0, 0.0),
            0.1,
            0.9,
            Vec3::ONE,
        ));
        let out = project_cloud(&cam, &cloud);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[1].id, 2);
    }

    #[test]
    fn project_storage_matches_project_cloud_exactly() {
        let cam = test_camera();
        let cloud = neo_scene::synth::SynthParams {
            gaussian_count: 300,
            ..Default::default()
        }
        .build();
        let aos = project_cloud(&cam, &cloud);
        assert_eq!(project_storage(&cam, &cloud), aos);
        // The planar backend stores identical f32 bits → identical output.
        let soa = neo_scene::SoaCloud::from_cloud(&cloud);
        assert_eq!(project_storage(&cam, &soa), aos);
        // The compact backend is lossy but must cull/project plausibly.
        let compact = neo_scene::CompactCloud::from_cloud(&cloud);
        let pc = project_storage(&cam, &compact);
        let visible = aos.len() as f32;
        assert!((pc.len() as f32 - visible).abs() <= visible * 0.02 + 2.0);
    }
}
