//! Tile grid and subtile bitmaps.
//!
//! The image plane is divided into square tiles (the paper's Neo
//! configuration uses 64×64-pixel tiles) and each tile into 8×8-pixel
//! subtiles, giving 64 subtiles per tile tracked in a 64-bit bitmap —
//! exactly the lightweight metadata GSCore/Neo's Intersection Test Units
//! produce.

use neo_math::num::usize_from_u32;
use neo_math::Vec2;

/// Subtile edge length in pixels (paper Table 1: 8×8 px subtiles).
pub const SUBTILE_SIZE: u32 = 8;

/// Number of subtiles per 64×64 tile (8×8 grid → 64, one bit each).
pub const SUBTILES_PER_TILE: u32 = 64;

/// Partition of an image into square tiles.
///
/// # Examples
///
/// ```
/// use neo_math::Vec2;
/// use neo_pipeline::TileGrid;
///
/// let grid = TileGrid::new(2560, 1440, 64);
/// assert_eq!((grid.tiles_x(), grid.tiles_y()), (40, 23)); // rows round up
/// assert_eq!(grid.tile_count(), 920);
/// // Border tiles are clipped to the image.
/// assert_eq!(grid.tile_rect(0, 22), (0, 1408, 64, 1440));
/// // A 10-pixel splat near a tile corner overlaps four tiles.
/// let span = grid.tiles_for_splat(Vec2::new(64.0, 64.0), 10.0).unwrap();
/// assert_eq!(span, (0, 0, 1, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Tile edge length in pixels.
    pub tile_size: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl TileGrid {
    /// Creates a grid for a `width`×`height` image with `tile_size` tiles.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero. In debug builds, additionally
    /// asserts that a tile spans at most 8×8 subtiles (`tile_size ≤ 64`
    /// at the fixed 8-px [`SUBTILE_SIZE`]) — the bound under which
    /// [`subtile_bitmap`]'s 64-bit bitmaps describe every subtile. Larger
    /// tiles still render correct pixels in release builds, but
    /// [`subtile_bitmap`] degrades to a conservative whole-tile test (no
    /// subtile skipping); see [`TileGrid::subtiles_per_edge`].
    pub fn new(width: u32, height: u32, tile_size: u32) -> Self {
        // neo-lint: allow(r2, "documented `# Panics` contract: zero dimensions make every derived tile count meaningless")
        assert!(
            width > 0 && height > 0 && tile_size > 0,
            "dimensions must be positive"
        );
        debug_assert!(
            tile_size.div_ceil(SUBTILE_SIZE) <= 8,
            "tile_size {tile_size} spans more than 64 subtiles; \
             subtile bitmaps track at most 8×8 subtiles per tile"
        );
        Self {
            width,
            height,
            tile_size,
            tiles_x: width.div_ceil(tile_size),
            tiles_y: height.div_ceil(tile_size),
        }
    }

    /// Number of tile columns.
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Number of tile rows.
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        usize_from_u32(self.tiles_x * self.tiles_y)
    }

    /// Flat tile index for tile coordinates `(tx, ty)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of range.
    pub fn tile_index(&self, tx: u32, ty: u32) -> usize {
        debug_assert!(tx < self.tiles_x && ty < self.tiles_y);
        usize_from_u32(ty * self.tiles_x + tx)
    }

    /// Pixel rectangle `(x0, y0, x1, y1)` of a tile (exclusive max, clamped
    /// to the image).
    pub fn tile_rect(&self, tx: u32, ty: u32) -> (u32, u32, u32, u32) {
        let x0 = tx * self.tile_size;
        let y0 = ty * self.tile_size;
        (
            x0,
            y0,
            (x0 + self.tile_size).min(self.width),
            (y0 + self.tile_size).min(self.height),
        )
    }

    /// Pixel rectangle of the tile with flat index `tile_index`
    /// (row-major), like [`TileGrid::tile_rect`] but without unpacking
    /// the coordinates first.
    ///
    /// ```
    /// use neo_pipeline::TileGrid;
    ///
    /// let grid = TileGrid::new(100, 70, 64);
    /// assert_eq!(grid.tile_rect_at(3), grid.tile_rect(1, 1));
    /// ```
    pub fn tile_rect_at(&self, tile_index: usize) -> (u32, u32, u32, u32) {
        // neo-lint: allow(r1, "tile_index ranges over tile_count(), a product of u32 tile coordinates; a valid index always fits u32")
        let tx = (tile_index as u32) % self.tiles_x;
        // neo-lint: allow(r1, "tile_index ranges over tile_count(), a product of u32 tile coordinates; a valid index always fits u32")
        let ty = (tile_index as u32) / self.tiles_x;
        self.tile_rect(tx, ty)
    }

    /// Inclusive tile-coordinate ranges overlapped by a circle of `radius`
    /// pixels centered at `center`, or `None` when it misses the image.
    pub fn tiles_for_splat(&self, center: Vec2, radius: f32) -> Option<(u32, u32, u32, u32)> {
        let min_x = center.x - radius;
        let min_y = center.y - radius;
        let max_x = center.x + radius;
        let max_y = center.y + radius;
        if max_x < 0.0 || max_y < 0.0 || min_x >= self.width as f32 || min_y >= self.height as f32 {
            return None;
        }
        // neo-lint: allow(r1, "f32->u32 after max(0.0): the saturating cast clamps the far edge to the image via the min() below; floats have no try_from")
        let tx0 = (min_x.max(0.0) as u32) / self.tile_size;
        // neo-lint: allow(r1, "f32->u32 after max(0.0): the saturating cast clamps the far edge to the image via the min() below; floats have no try_from")
        let ty0 = (min_y.max(0.0) as u32) / self.tile_size;
        // neo-lint: allow(r1, "f32->u32 after min(width - 1): non-negative (the early-out above rejects max < 0) and in image range; floats have no try_from")
        let tx1 = ((max_x.min(self.width as f32 - 1.0)) as u32) / self.tile_size;
        // neo-lint: allow(r1, "f32->u32 after min(height - 1): non-negative (the early-out above rejects max < 0) and in image range; floats have no try_from")
        let ty1 = ((max_y.min(self.height as f32 - 1.0)) as u32) / self.tile_size;
        Some((
            tx0,
            ty0,
            tx1.min(self.tiles_x - 1),
            ty1.min(self.tiles_y - 1),
        ))
    }

    /// Subtile grid dimension along one tile edge.
    ///
    /// Subtile bitmaps are 64-bit, so subtile skipping requires
    /// `subtiles_per_edge() ≤ 8` (i.e. `tile_size ≤ 64` at the fixed
    /// 8-px [`SUBTILE_SIZE`]) — the paper's 64×64/8×8 configuration and
    /// everything below it. Beyond that bound, [`subtile_bitmap`] falls
    /// back to a conservative whole-tile intersection test: pixels are
    /// never wrongly skipped, but per-subtile skipping is lost.
    /// [`TileGrid::new`] flags such grids with a `debug_assert!`.
    pub fn subtiles_per_edge(&self) -> u32 {
        self.tile_size.div_ceil(SUBTILE_SIZE)
    }
}

/// Computes the subtile intersection bitmap for a splat within a tile.
///
/// Bit `s` is set when the circle (`center`, `radius`, in pixels) overlaps
/// subtile `s` (row-major within the tile). This models the ITU's
/// on-the-fly bitmap generation.
///
/// Tiles spanning more than 64 subtiles (see
/// [`TileGrid::subtiles_per_edge`]) cannot be described by a 64-bit
/// bitmap; for those this returns the conservative whole-tile answer —
/// all-ones when the circle overlaps the tile rect at all, zero
/// otherwise — so callers still never skip a covered pixel. (Simply
/// clamping to the first 64 subtiles, as this function once did, would
/// report `0` for a splat overlapping only untracked subtiles and make
/// the rasterizer drop it entirely.)
pub fn subtile_bitmap(grid: &TileGrid, tx: u32, ty: u32, center: Vec2, radius: f32) -> u64 {
    let (x0, y0, x1, y1) = grid.tile_rect(tx, ty);
    let per_edge = grid.subtiles_per_edge();
    if per_edge > 8 {
        let cx = center.x.clamp(x0 as f32, x1 as f32);
        let cy = center.y.clamp(y0 as f32, y1 as f32);
        let dx = center.x - cx;
        let dy = center.y - cy;
        return if dx * dx + dy * dy <= radius * radius {
            u64::MAX
        } else {
            0
        };
    }
    let mut bitmap = 0u64;
    let mut bit = 0u32;
    for sy in 0..per_edge {
        for sx in 0..per_edge {
            if bit >= 64 {
                return bitmap;
            }
            let sx0 = (x0 + sx * SUBTILE_SIZE) as f32;
            let sy0 = (y0 + sy * SUBTILE_SIZE) as f32;
            let sx1 = ((x0 + (sx + 1) * SUBTILE_SIZE).min(x1)) as f32;
            let sy1 = ((y0 + (sy + 1) * SUBTILE_SIZE).min(y1)) as f32;
            if sx1 <= sx0 || sy1 <= sy0 {
                bit += 1;
                continue;
            }
            // Circle-rectangle overlap: clamp center to the rect.
            let cx = center.x.clamp(sx0, sx1);
            let cy = center.y.clamp(sy0, sy1);
            let dx = center.x - cx;
            let dy = center.y - cy;
            if dx * dx + dy * dy <= radius * radius {
                bitmap |= 1u64 << bit;
            }
            bit += 1;
        }
    }
    bitmap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions_round_up() {
        let g = TileGrid::new(2560, 1440, 64);
        assert_eq!(g.tiles_x(), 40);
        assert_eq!(g.tiles_y(), 23); // 1440/64 = 22.5 → 23
        assert_eq!(g.tile_count(), 920);
        assert_eq!(g.subtiles_per_edge(), 8);
    }

    #[test]
    fn tile_rect_clamps_at_border() {
        let g = TileGrid::new(100, 70, 64);
        assert_eq!(g.tile_rect(0, 0), (0, 0, 64, 64));
        assert_eq!(g.tile_rect(1, 1), (64, 64, 100, 70));
    }

    #[test]
    fn splat_tile_ranges() {
        let g = TileGrid::new(256, 256, 64);
        // Small splat inside one tile.
        let r = g.tiles_for_splat(Vec2::new(32.0, 32.0), 8.0).unwrap();
        assert_eq!(r, (0, 0, 0, 0));
        // Splat straddling four tiles.
        let r = g.tiles_for_splat(Vec2::new(64.0, 64.0), 4.0).unwrap();
        assert_eq!(r, (0, 0, 1, 1));
        // Splat fully outside.
        assert!(g.tiles_for_splat(Vec2::new(-50.0, 10.0), 8.0).is_none());
        assert!(g.tiles_for_splat(Vec2::new(500.0, 10.0), 8.0).is_none());
    }

    #[test]
    fn splat_overlapping_edge_is_kept() {
        let g = TileGrid::new(256, 256, 64);
        let r = g.tiles_for_splat(Vec2::new(-5.0, 10.0), 8.0).unwrap();
        assert_eq!(r.0, 0);
    }

    #[test]
    fn subtile_bitmap_small_splat_sets_one_bit() {
        let g = TileGrid::new(256, 256, 64);
        // Center of subtile (2, 3) within tile (0, 0): bit 3*8+2 = 26.
        let c = Vec2::new(2.0 * 8.0 + 4.0, 3.0 * 8.0 + 4.0);
        let bm = subtile_bitmap(&g, 0, 0, c, 2.0);
        assert_eq!(bm, 1u64 << 26);
    }

    #[test]
    fn subtile_bitmap_big_splat_covers_tile() {
        let g = TileGrid::new(64, 64, 64);
        let bm = subtile_bitmap(&g, 0, 0, Vec2::new(32.0, 32.0), 64.0);
        assert_eq!(bm, u64::MAX);
    }

    #[test]
    fn subtile_bitmap_outside_is_zero() {
        let g = TileGrid::new(128, 128, 64);
        let bm = subtile_bitmap(&g, 0, 0, Vec2::new(120.0, 120.0), 4.0);
        assert_eq!(bm, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_size_rejected() {
        let _ = TileGrid::new(100, 100, 0);
    }

    /// Debug builds reject grids whose tiles span more than 64 subtiles
    /// at construction (the bitmap cannot describe them).
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "more than 64 subtiles")]
    fn oversized_tile_asserts_in_debug() {
        let _ = TileGrid::new(256, 256, 128);
    }

    /// Release builds degrade oversized tiles to a conservative
    /// whole-tile bitmap: a splat overlapping *only* subtiles beyond bit
    /// 63 must still be reported as covering (the old first-64 clamp
    /// returned 0 and made the rasterizer drop such splats), and a splat
    /// missing the tile entirely still reports zero coverage.
    #[cfg(not(debug_assertions))]
    #[test]
    fn oversized_tile_bitmap_is_conservative() {
        let g = TileGrid::new(128, 128, 128);
        assert_eq!(g.subtiles_per_edge(), 16);
        // Bottom-right corner: subtile (15, 15), bit 255 — untracked.
        assert_eq!(
            subtile_bitmap(&g, 0, 0, Vec2::new(120.0, 120.0), 4.0),
            u64::MAX
        );
        // Fully off-tile splats still report no coverage.
        assert_eq!(subtile_bitmap(&g, 0, 0, Vec2::new(300.0, 300.0), 4.0), 0);
    }
}
