//! Functional 3D Gaussian Splatting rendering pipeline.
//!
//! Implements the four-stage pipeline of the paper's Figure 2: ❶ frustum
//! culling, ❷ feature extraction (EWA projection + spherical-harmonics
//! color), ❸ depth sorting (delegated to `neo-sort` / `neo-core` — this
//! crate only *bins* Gaussians to tiles), and ❹ tile-based α-blending
//! rasterization with 8×8-pixel subtiles (GSCore-style subtiling).
//!
//! The pipeline is a *functional* model: it produces real images so that
//! rendering-quality experiments (Table 2, Figure 19) measure actual PSNR,
//! and it produces the per-tile workload statistics that drive the
//! cycle-level performance model in `neo-sim`.
//!
//! # Examples
//!
//! ```
//! use neo_pipeline::{render_reference, RenderConfig};
//! use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
//!
//! let cloud = ScenePreset::Family.build_scaled(0.003);
//! let sampler = FrameSampler::new(
//!     ScenePreset::Family.trajectory(), 30.0, Resolution::Custom(160, 90));
//! let (image, stats) = render_reference(&cloud, &sampler.frame(0), &RenderConfig::default());
//! assert_eq!(image.width(), 160);
//! assert!(stats.projected > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod binning;
mod culling;
mod framebuffer;
pub mod lod;
mod pipeline;
mod projection;
mod scratch;
pub mod stats;
mod tiles;

pub use binning::{
    bin_to_tiles, bin_to_tiles_with_clusters, diff_tile_population, TileAssignments,
    TilePopulationDiff,
};
pub use culling::{cull_cloud, CullResult};
pub use framebuffer::Image;
pub use lod::{cluster_visible, project_clusters, ClusterProjection, LodConfig};
pub use pipeline::{render_reference, RenderConfig, TileRasterStats};
pub use projection::{project_cloud, project_gaussian, project_storage, ProjectedGaussian};
pub use scratch::{RasterScratch, ShardScratch};
pub use stats::{FrameStats, Stage, TrafficLedger};
pub use tiles::{subtile_bitmap, TileGrid, SUBTILES_PER_TILE, SUBTILE_SIZE};

/// Rasterizes one tile's Gaussians (already depth-ordered) into `image`.
///
/// Re-exported from the rasterizer module for callers (like `neo-core`)
/// that manage their own per-tile ordering.
pub use pipeline::rasterize_tile;

/// Scratch-buffer variant of [`rasterize_tile`]: leaves the finished
/// pixel block in a reusable [`RasterScratch`] for deferred, deterministic
/// merging — the rasterization primitive of `neo-core`'s intra-frame
/// worker pool.
pub use pipeline::rasterize_tile_with_scratch;
