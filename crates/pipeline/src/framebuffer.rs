//! RGB framebuffer with `f32` channels.

use neo_math::num::usize_from_u32;
use neo_math::Vec3;

/// An RGB image with `f32` channels in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<Vec3>,
}

impl Image {
    /// Creates an image filled with `background`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: u32, height: u32, background: Vec3) -> Self {
        // neo-lint: allow(r2, "documented `# Panics` contract: zero-sized images are a caller bug")
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            data: vec![background; usize_from_u32(width) * usize_from_u32(height)],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        // neo-lint: allow(r2, "documented `# Panics` contract, same semantics as slice indexing")
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[usize_from_u32(y * self.width + x)]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Vec3) {
        // neo-lint: allow(r2, "documented `# Panics` contract, same semantics as slice indexing")
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[usize_from_u32(y * self.width + x)] = c;
    }

    /// Raw pixel slice, row-major.
    pub fn pixels(&self) -> &[Vec3] {
        &self.data
    }

    /// Mutable raw pixel slice, row-major.
    pub fn pixels_mut(&mut self) -> &mut [Vec3] {
        &mut self.data
    }

    /// Copies a `w`×`h` row-major pixel block into the rectangle whose
    /// top-left corner is `(x0, y0)`.
    ///
    /// This is the merge primitive of the parallel renderer: tiles own
    /// disjoint rectangles, so replaying per-tile blocks in any grouping
    /// produces the same image.
    ///
    /// ```
    /// use neo_math::Vec3;
    /// use neo_pipeline::Image;
    ///
    /// let mut img = Image::new(4, 3, Vec3::ZERO);
    /// img.blit_region(1, 1, 2, 2, &[Vec3::ONE; 4]);
    /// assert_eq!(img.get(2, 2), Vec3::ONE);
    /// assert_eq!(img.get(0, 0), Vec3::ZERO);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the rectangle exceeds the image bounds or `block` is
    /// not exactly `w * h` pixels.
    pub fn blit_region(&mut self, x0: u32, y0: u32, w: u32, h: u32, block: &[Vec3]) {
        // Widened arithmetic: u32 sums would wrap in release builds and
        // let an out-of-bounds rect slip past the check.
        // neo-lint: allow(r2, "documented `# Panics` contract: the widened bounds check IS the guard")
        assert!(
            u64::from(x0) + u64::from(w) <= u64::from(self.width)
                && u64::from(y0) + u64::from(h) <= u64::from(self.height),
            "blit rect {w}x{h}+{x0}+{y0} exceeds {}x{} image",
            self.width,
            self.height
        );
        let (w, h) = (usize_from_u32(w), usize_from_u32(h));
        // neo-lint: allow(r2, "documented `# Panics` contract: mis-sized blocks are a caller bug")
        assert_eq!(block.len(), w * h, "block size mismatch");
        for row in 0..h {
            let dst = (usize_from_u32(y0) + row) * usize_from_u32(self.width) + usize_from_u32(x0);
            let src = row * w;
            self.data[dst..dst + w].copy_from_slice(&block[src..src + w]);
        }
    }

    /// Mean pixel value across the image.
    pub fn mean(&self) -> Vec3 {
        let sum = self.data.iter().fold(Vec3::ZERO, |acc, &p| acc + p);
        sum / self.data.len() as f32
    }

    /// Converts to 8-bit RGB, clamping to `[0, 1]`.
    pub fn to_rgb8(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 3);
        // neo-lint: allow(r1, "f32->u8 after clamp to [0,1], scale by 255, round: in 0..=255 by construction; floats have no try_from")
        let quantize = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
        for p in &self.data {
            out.push(quantize(p.x));
            out.push(quantize(p.y));
            out.push(quantize(p.z));
        }
        out
    }

    /// Writes a binary PPM (P6) representation, handy for eyeballing
    /// example output.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(self.to_rgb8());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills_background() {
        let img = Image::new(4, 2, Vec3::new(0.5, 0.0, 1.0));
        assert_eq!(img.get(3, 1), Vec3::new(0.5, 0.0, 1.0));
        assert_eq!(img.pixels().len(), 8);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::new(3, 3, Vec3::ZERO);
        img.set(1, 2, Vec3::ONE);
        assert_eq!(img.get(1, 2), Vec3::ONE);
        assert_eq!(img.get(2, 1), Vec3::ZERO);
    }

    #[test]
    fn rgb8_clamps() {
        let mut img = Image::new(1, 1, Vec3::new(2.0, -1.0, 0.5));
        let bytes = img.to_rgb8();
        assert_eq!(bytes, vec![255, 0, 128]);
        img.set(0, 0, Vec3::ZERO);
        assert_eq!(img.to_rgb8(), vec![0, 0, 0]);
    }

    #[test]
    fn ppm_has_header() {
        let img = Image::new(2, 2, Vec3::ZERO);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 12);
    }

    #[test]
    fn mean_averages() {
        let mut img = Image::new(2, 1, Vec3::ZERO);
        img.set(1, 0, Vec3::ONE);
        assert_eq!(img.mean(), Vec3::splat(0.5));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let img = Image::new(2, 2, Vec3::ZERO);
        let _ = img.get(2, 0);
    }

    #[test]
    fn blit_region_roundtrip() {
        let mut img = Image::new(5, 4, Vec3::ZERO);
        img.blit_region(3, 2, 2, 2, &[Vec3::ONE; 4]);
        assert_eq!(img.get(3, 2), Vec3::ONE);
        assert_eq!(img.get(4, 3), Vec3::ONE);
        assert_eq!(img.get(2, 2), Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn blit_region_rejects_wrapping_rects() {
        // x0 + w wraps u32; the widened bounds check must still reject it.
        let mut img = Image::new(4, 4, Vec3::ZERO);
        img.blit_region(u32::MAX - 1, 1, 2, 1, &[Vec3::ONE; 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn blit_region_rejects_oversized_rects() {
        let mut img = Image::new(4, 4, Vec3::ZERO);
        img.blit_region(3, 0, 2, 1, &[Vec3::ONE; 2]);
    }
}
