//! Off-chip memory model (LPDDR4-class channel).
//!
//! The paper models DRAM with Ramulator; for latency/throughput at the
//! granularity our frame model needs, an effective-bandwidth model with a
//! burst-quantization and read/write-turnaround derate captures the same
//! behaviour: streaming accesses achieve a fixed fraction of peak, and
//! traffic is rounded up to burst granularity.

/// An LPDDR4-class DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Peak bandwidth in GB/s.
    pub peak_gbps: f64,
    /// Fraction of peak achievable by the streaming access patterns of
    /// the 3DGS pipeline (row-hit dominated, some turnaround): ~0.8.
    pub efficiency: f64,
    /// Minimum transfer granularity in bytes (LPDDR4 BL16 × 32-bit ≈ 64B).
    pub burst_bytes: u64,
}

impl DramModel {
    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics when parameters are non-positive or efficiency exceeds 1.
    pub fn new(peak_gbps: f64, efficiency: f64, burst_bytes: u64) -> Self {
        assert!(peak_gbps > 0.0, "bandwidth must be positive");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        assert!(burst_bytes > 0, "burst size must be positive");
        Self {
            peak_gbps,
            efficiency,
            burst_bytes,
        }
    }

    /// The paper's default on-device budget: 51.2 GB/s.
    pub fn lpddr4_51_2() -> Self {
        Self::new(51.2, 0.8, 64)
    }

    /// Mid bandwidth point of Figure 4: 102.4 GB/s.
    pub fn lpddr4_102_4() -> Self {
        Self::new(102.4, 0.8, 64)
    }

    /// High bandwidth point of Figure 4 / Orin AGX: 204.8 GB/s.
    pub fn lpddr5_204_8() -> Self {
        Self::new(204.8, 0.8, 64)
    }

    /// Effective streaming bandwidth in bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.peak_gbps * 1e9 * self.efficiency
    }

    /// Time in seconds to transfer `bytes` (burst-quantized streaming).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let bursts = bytes.div_ceil(self.burst_bytes);
        (bursts * self.burst_bytes) as f64 / self.effective_bandwidth()
    }

    /// Time in seconds for `bytes` of *random* (row-miss heavy) access —
    /// used for the non-deferred depth-update ablation, which scatters
    /// single-entry reads. Models a 4× derate.
    pub fn random_access_time(&self, bytes: u64) -> f64 {
        self.transfer_time(bytes) * 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let d = DramModel::lpddr4_51_2();
        let t1 = d.transfer_time(1 << 20);
        let t2 = d.transfer_time(2 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn effective_bandwidth_applies_efficiency() {
        let d = DramModel::new(100.0, 0.5, 64);
        assert_eq!(d.effective_bandwidth(), 50.0 * 1e9);
    }

    #[test]
    fn small_transfers_round_to_burst() {
        let d = DramModel::new(64.0, 1.0, 64);
        // 1 byte still costs one 64-byte burst.
        assert_eq!(d.transfer_time(1), d.transfer_time(64));
        assert!(d.transfer_time(65) > d.transfer_time(64));
        assert_eq!(d.transfer_time(0), 0.0);
    }

    #[test]
    fn random_access_is_slower() {
        let d = DramModel::lpddr4_51_2();
        assert!(d.random_access_time(4096) > d.transfer_time(4096));
    }

    #[test]
    fn presets_match_paper_bandwidths() {
        assert_eq!(DramModel::lpddr4_51_2().peak_gbps, 51.2);
        assert_eq!(DramModel::lpddr4_102_4().peak_gbps, 102.4);
        assert_eq!(DramModel::lpddr5_204_8().peak_gbps, 204.8);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_rejected() {
        let _ = DramModel::new(51.2, 1.5, 64);
    }
}
