//! Area/power component model reproducing Tables 3 and 4.
//!
//! The paper synthesizes Neo's RTL with Synopsys Design Compiler under the
//! ASAP7 7 nm library, measures buffers with CACTI at 22 nm, and scales to
//! 7 nm with DeepScaleTool. We reproduce the *component model*: per-unit
//! area/power values seeded from the paper's Table 4, composable over unit
//! counts, plus a DeepScaleTool-style technology-scaling helper.

/// One hardware component's silicon cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Component name as listed in Table 4.
    pub name: &'static str,
    /// Engine the component belongs to.
    pub engine: Engine,
    /// Total area in mm² at 7 nm (all instances combined).
    pub area_mm2: f64,
    /// Total power in mW at 1 GHz (all instances combined).
    pub power_mw: f64,
}

/// The three engines of the Neo accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Frustum culling, feature extraction, duplication.
    Preprocessing,
    /// Reuse-and-update sorting (BSU + MSU+ + buffers).
    Sorting,
    /// Subtile rasterization (SCU + ITU + buffers).
    Rasterization,
}

impl Engine {
    /// All engines in pipeline order.
    pub const ALL: [Engine; 3] = [
        Engine::Preprocessing,
        Engine::Sorting,
        Engine::Rasterization,
    ];

    /// Engine name as printed in Table 4.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Preprocessing => "Preprocessing Engine",
            Engine::Sorting => "Sorting Engine",
            Engine::Rasterization => "Rasterization Engine",
        }
    }
}

/// Neo's component inventory (Table 4, 7 nm, 1 GHz).
pub fn neo_components() -> Vec<ComponentSpec> {
    vec![
        ComponentSpec {
            name: "Preprocessing Engine",
            engine: Engine::Preprocessing,
            area_mm2: 0.026,
            power_mw: 194.9,
        },
        ComponentSpec {
            name: "Merge Sort Unit+",
            engine: Engine::Sorting,
            area_mm2: 0.005,
            power_mw: 12.4,
        },
        ComponentSpec {
            name: "Bitonic Sort Unit",
            engine: Engine::Sorting,
            area_mm2: 0.008,
            power_mw: 75.0,
        },
        ComponentSpec {
            name: "Buffers + others (Sorting)",
            engine: Engine::Sorting,
            area_mm2: 0.040,
            power_mw: 71.6,
        },
        ComponentSpec {
            name: "Subtile Compute Unit",
            engine: Engine::Rasterization,
            area_mm2: 0.228,
            power_mw: 375.0,
        },
        ComponentSpec {
            name: "Intersection Test Unit",
            engine: Engine::Rasterization,
            area_mm2: 0.030,
            power_mw: 58.7,
        },
        ComponentSpec {
            name: "Buffers + others (Raster)",
            engine: Engine::Rasterization,
            area_mm2: 0.050,
            power_mw: 10.2,
        },
    ]
}

/// Total area/power of a component list.
pub fn totals(components: &[ComponentSpec]) -> (f64, f64) {
    components
        .iter()
        .fold((0.0, 0.0), |(a, p), c| (a + c.area_mm2, p + c.power_mw))
}

/// Per-engine subtotal.
pub fn engine_totals(components: &[ComponentSpec], engine: Engine) -> (f64, f64) {
    components
        .iter()
        .filter(|c| c.engine == engine)
        .fold((0.0, 0.0), |(a, p), c| (a + c.area_mm2, p + c.power_mw))
}

/// GSCore's evaluated totals at 7 nm / 1 GHz (Table 3, scaled from the
/// original 28 nm synthesis with DeepScaleTool).
pub fn gscore_totals() -> (f64, f64) {
    (0.417, 719.9)
}

/// DeepScaleTool-style technology scaling of area between process nodes
/// (areas scale roughly with the square of the contacted gate pitch;
/// exponent ≈ 1.9 empirically across 28 → 7 nm).
///
/// # Panics
///
/// Panics when either node is non-positive.
pub fn scale_area(area_mm2: f64, from_nm: f64, to_nm: f64) -> f64 {
    assert!(
        from_nm > 0.0 && to_nm > 0.0,
        "process nodes must be positive"
    );
    area_mm2 * (to_nm / from_nm).powf(1.9)
}

/// Per-frame energy estimate in millijoules: each engine burns its Table 4
/// power for the duration of its pipeline stage, plus DRAM access energy
/// at `pj_per_byte` (LPDDR4 ≈ 20 pJ/byte including I/O).
///
/// `stage_seconds` are the (feature-extraction, sorting, rasterization)
/// stage latencies; `stage_bytes` the corresponding DRAM traffic.
pub fn frame_energy_mj(stage_seconds: [f64; 3], stage_bytes: [u64; 3], pj_per_byte: f64) -> f64 {
    let comps = neo_components();
    let engine_power_w = [
        engine_totals(&comps, Engine::Preprocessing).1 / 1e3,
        engine_totals(&comps, Engine::Sorting).1 / 1e3,
        engine_totals(&comps, Engine::Rasterization).1 / 1e3,
    ];
    let compute_j: f64 = stage_seconds
        .iter()
        .zip(engine_power_w)
        .map(|(s, p)| s * p)
        .sum();
    let dram_j: f64 = stage_bytes
        .iter()
        .map(|&b| b as f64 * pj_per_byte * 1e-12)
        .sum();
    (compute_j + dram_j) * 1e3
}

/// Default LPDDR4 DRAM access energy (pJ per byte, device + I/O).
pub const LPDDR4_PJ_PER_BYTE: f64 = 20.0;

/// Area/power of Neo's *additional* hardware relative to GSCore-style
/// units: the MSU+ and the ITUs (the paper reports 9.04% of area and
/// 8.91% of power).
pub fn neo_additional_hardware() -> (f64, f64) {
    let comps = neo_components();
    comps
        .iter()
        .filter(|c| c.name == "Merge Sort Unit+" || c.name == "Intersection Test Unit")
        .fold((0.0, 0.0), |(a, p), c| (a + c.area_mm2, p + c.power_mw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table3() {
        let (area, power) = totals(&neo_components());
        assert!((area - 0.387).abs() < 1e-9, "area {area}");
        assert!((power - 797.8).abs() < 1e-6, "power {power}");
    }

    #[test]
    fn engine_subtotals_match_table4() {
        let comps = neo_components();
        let (sa, sp) = engine_totals(&comps, Engine::Sorting);
        assert!((sa - 0.053).abs() < 1e-9);
        assert!((sp - 159.0).abs() < 1e-6);
        let (ra, rp) = engine_totals(&comps, Engine::Rasterization);
        assert!((ra - 0.308).abs() < 1e-9);
        assert!((rp - 443.9).abs() < 1e-6);
        let (pa, pp) = engine_totals(&comps, Engine::Preprocessing);
        assert!((pa - 0.026).abs() < 1e-9);
        assert!((pp - 194.9).abs() < 1e-6);
    }

    #[test]
    fn neo_smaller_than_gscore_slightly_more_power() {
        let (na, np) = totals(&neo_components());
        let (ga, gp) = gscore_totals();
        assert!(na < ga, "Neo area {na} must be below GSCore {ga}");
        assert!(np > gp, "Neo power {np} slightly above GSCore {gp}");
    }

    #[test]
    fn additional_hardware_is_small() {
        let (area, power) = neo_additional_hardware();
        let (ta, tp) = totals(&neo_components());
        let area_frac = area / ta * 100.0;
        let power_frac = power / tp * 100.0;
        // Paper: 9.04% area, 8.91% power.
        assert!((area_frac - 9.04).abs() < 0.5, "area frac {area_frac:.2}%");
        assert!(
            (power_frac - 8.91).abs() < 0.5,
            "power frac {power_frac:.2}%"
        );
    }

    #[test]
    fn area_scaling_shrinks_with_node() {
        let scaled = scale_area(1.0, 28.0, 7.0);
        assert!(
            scaled < 0.1 && scaled > 0.01,
            "28→7 nm ≈ 14× shrink, got {scaled}"
        );
        // Identity scaling.
        assert!((scale_area(2.5, 7.0, 7.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "process nodes")]
    fn invalid_node_rejected() {
        let _ = scale_area(1.0, 0.0, 7.0);
    }

    #[test]
    fn frame_energy_combines_compute_and_dram() {
        // 10 ms in each stage, no traffic: energy = 10ms × total power.
        let compute_only = frame_energy_mj([0.01; 3], [0, 0, 0], LPDDR4_PJ_PER_BYTE);
        let (_, total_mw) = totals(&neo_components());
        assert!((compute_only - 0.01 * total_mw).abs() < 1e-6);
        // Adding traffic adds energy.
        let with_dram = frame_energy_mj([0.01; 3], [1 << 30, 0, 0], LPDDR4_PJ_PER_BYTE);
        assert!(with_dram > compute_only);
        // 1 GiB at 20 pJ/B ≈ 21.5 mJ.
        assert!((with_dram - compute_only - 21.47).abs() < 0.1);
    }
}
