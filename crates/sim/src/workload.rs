//! Per-frame workload statistics — the input to every device model.

/// Statistics describing one frame of 3DGS work. Produced by
/// `neo-workloads` from real pipeline runs (and scalable to full scene
/// sizes), or synthesized for quick experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadFrame {
    /// Gaussians in the scene.
    pub n_gaussians: u64,
    /// Gaussians surviving frustum culling.
    pub n_projected: u64,
    /// Total per-tile assignments after duplication (Σ tile populations).
    pub duplicates: u64,
    /// Tiles with at least one Gaussian (64×64-px tiles).
    pub occupied_tiles: u64,
    /// Output pixels.
    pub pixels: u64,
    /// Newly visible Gaussians inserted this frame (reuse-and-update).
    pub incoming: u64,
    /// Gaussians flagged outgoing this frame (reuse-and-update).
    pub outgoing: u64,
    /// Total Gaussian-table entries carried across frames (≈ duplicates
    /// plus stale entries pending deletion).
    pub table_entries: u64,
    /// α-blend operations (measured, or estimated from coverage).
    pub blend_ops: u64,
    /// Bytes per Gaussian feature record in the off-chip feature table.
    pub feature_bytes: u64,
}

/// Mean α-blend depth per pixel before saturation (early-termination
/// overdraw), used when blend ops must be estimated.
pub const BLEND_OVERDRAW: f64 = 30.0;

impl WorkloadFrame {
    /// Synthesizes a plausible steady-state QHD frame for a scene of
    /// `n_gaussians`, using the coverage ratios measured on the synthetic
    /// benchmark scenes (≈55% visible, ≈2.5% per-frame churn).
    pub fn synthetic_qhd(n_gaussians: u64) -> Self {
        Self::synthetic(n_gaussians, 2560, 1440)
    }

    /// Synthesizes a steady-state frame at an arbitrary resolution.
    ///
    /// Tile overlap grows superlinearly with resolution: splat radii scale
    /// with focal length, so the 64×64-tile footprint of a splat grows
    /// roughly with pixel area — ≈3 tiles/Gaussian at HD, ≈12 at QHD.
    /// This is what makes sorting traffic explode at high resolution
    /// (Figures 3 and 5).
    pub fn synthetic(n_gaussians: u64, width: u64, height: u64) -> Self {
        let pixels = width * height;
        let n_projected = (n_gaussians as f64 * 0.55) as u64;
        // Tiles per projected Gaussian vs linear resolution scale.
        let scale = (pixels as f64 / (1280.0 * 720.0)).sqrt();
        let tiles_per = 0.7 + 2.2 * scale.powf(2.4);
        let duplicates = (n_projected as f64 * tiles_per) as u64;
        let tile_count = width.div_ceil(64) * height.div_ceil(64);
        let occupied = (tile_count as f64 * 0.9) as u64;
        let churn = (duplicates as f64 * 0.025) as u64;
        Self {
            n_gaussians,
            n_projected,
            duplicates,
            occupied_tiles: occupied,
            pixels,
            incoming: churn,
            outgoing: churn,
            table_entries: duplicates + churn,
            blend_ops: (pixels as f64 * BLEND_OVERDRAW) as u64,
            feature_bytes: 56,
        }
    }

    /// Returns the frame scaled by `factor` in Gaussian-dependent counts
    /// (used to extrapolate reduced captures to full scene size; pixel
    /// count is resolution-bound and unchanged).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let s = |v: u64| (v as f64 * factor).round() as u64;
        self.n_gaussians = s(self.n_gaussians);
        self.n_projected = s(self.n_projected);
        self.duplicates = s(self.duplicates);
        self.incoming = s(self.incoming);
        self.outgoing = s(self.outgoing);
        self.table_entries = s(self.table_entries);
        self.blend_ops = s(self.blend_ops);
        // Occupied tiles saturate rather than scale; keep as-is.
        self
    }

    /// Mean table length per occupied tile.
    pub fn mean_tile_population(&self) -> f64 {
        if self.occupied_tiles == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.occupied_tiles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_scales_with_resolution() {
        let hd = WorkloadFrame::synthetic(300_000, 1280, 720);
        let qhd = WorkloadFrame::synthetic_qhd(300_000);
        assert!(qhd.duplicates > hd.duplicates);
        assert_eq!(qhd.pixels, 2560 * 1440);
        assert!(qhd.mean_tile_population() > hd.mean_tile_population());
    }

    #[test]
    fn scaled_multiplies_counts() {
        let w = WorkloadFrame::synthetic_qhd(100_000);
        let s = w.scaled(10.0);
        assert_eq!(s.n_gaussians, 1_000_000);
        assert_eq!(s.pixels, w.pixels);
        assert!(s.duplicates >= w.duplicates * 9);
    }

    #[test]
    fn churn_is_small_fraction() {
        let w = WorkloadFrame::synthetic_qhd(350_000);
        assert!((w.incoming as f64) < w.duplicates as f64 * 0.05);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = WorkloadFrame::synthetic_qhd(1).scaled(0.0);
    }
}
