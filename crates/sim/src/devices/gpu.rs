//! NVIDIA Jetson Orin AGX model (the paper's edge-GPU baseline).
//!
//! A roofline-style model: the GPU runs the reference 3DGS pipeline with
//! 16×16-pixel tiles, CUB radix sort over 64-bit (tile|depth) keys, and a
//! CUDA α-blending kernel that prior work (and Figure 10) shows is the
//! GPU's dominant compute bottleneck.

use crate::devices::Device;
use crate::dram::DramModel;
use crate::{FrameTiming, StageTiming, WorkloadFrame};

/// Orin AGX 64 GB model parameters. Defaults follow the paper's setup
/// (204.8 GB/s, 60 W power budget) with kernel constants calibrated to the
/// paper's measured latency breakdown (Figure 10: sorting bandwidth-bound
/// at ~26 ms, rasterization compute-bound at ~64 ms for QHD).
#[derive(Debug, Clone, PartialEq)]
pub struct OrinAgx {
    /// DRAM channel (204.8 GB/s on Orin AGX).
    pub dram: DramModel,
    /// Ratio of GPU (16×16-tile) duplicates to the 64×64-tile duplicates
    /// reported in the workload (smaller tiles → more duplication).
    pub dup_factor: f64,
    /// Bytes per sorted record (64-bit key + 32-bit value + padding).
    pub sort_record_bytes: f64,
    /// Radix passes over the key array (8 × 8-bit digits for 64-bit keys),
    /// each reading and writing the full array.
    pub radix_passes: f64,
    /// Effective blend operations per second of the CUDA rasterizer
    /// (atomic-blend-limited, well below peak FLOPs).
    pub blend_rate: f64,
    /// Cache-miss fraction for per-duplicate feature reads in raster.
    pub raster_miss_rate: f64,
    /// Gaussians projected per second by the preprocessing kernels.
    pub project_rate: f64,
}

impl OrinAgx {
    /// Creates the default Orin AGX model.
    pub fn new() -> Self {
        Self {
            dram: DramModel::lpddr5_204_8(),
            dup_factor: 2.0,
            sort_record_bytes: 16.0,
            radix_passes: 8.0,
            blend_rate: 1.8e9,
            raster_miss_rate: 0.3,
            project_rate: 2.0e9,
        }
    }

    /// A software-Neo variant (Figure 10's "Neo-SW"): the reuse-and-update
    /// algorithm on the GPU. Sorting traffic shrinks to a single pass plus
    /// merge overheads, but irregular insertion/deletion halves SIMD
    /// efficiency and rasterization is unchanged — reproducing the paper's
    /// finding that the software-only version gains little end-to-end.
    pub fn neo_sw(self) -> NeoSwOrin {
        NeoSwOrin { base: self }
    }
}

impl Default for OrinAgx {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for OrinAgx {
    fn name(&self) -> &str {
        "Orin AGX"
    }

    fn simulate_frame(&self, w: &WorkloadFrame) -> FrameTiming {
        let d_gpu = w.duplicates as f64 * self.dup_factor;

        // Feature extraction: read the full feature table with imperfect
        // locality; write projected 2D features.
        let fe_bytes = (w.n_gaussians as f64 * w.feature_bytes as f64 * 1.2
            + w.n_projected as f64 * 48.0) as u64;
        let fe = StageTiming {
            compute_s: w.n_projected as f64 / self.project_rate,
            memory_s: self.dram.transfer_time(fe_bytes),
            bytes: fe_bytes,
        };

        // Sorting: duplicate-key emission + multi-pass radix over the
        // full (key, value) array. Bandwidth-bound.
        let sort_bytes = (d_gpu * self.sort_record_bytes * (1.0 + 2.0 * self.radix_passes)) as u64;
        let sort = StageTiming {
            // Key scatter/gather ~ 2 ops per record per pass.
            compute_s: d_gpu * self.radix_passes * 2.0 / 40.0e9,
            memory_s: self.dram.transfer_time(sort_bytes),
            bytes: sort_bytes,
        };

        // Rasterization: compute-bound α-blending plus cached feature
        // reads and framebuffer writes.
        let raster_bytes = (d_gpu * 48.0 * self.raster_miss_rate) as u64 + w.pixels * 8;
        let raster = StageTiming {
            compute_s: w.blend_ops as f64 / self.blend_rate,
            memory_s: self.dram.transfer_time(raster_bytes),
            bytes: raster_bytes,
        };

        FrameTiming {
            stages: [fe, sort, raster],
        }
    }
}

/// Software-only Neo on the Orin GPU (Figure 10's Neo-SW).
#[derive(Debug, Clone, PartialEq)]
pub struct NeoSwOrin {
    base: OrinAgx,
}

impl Device for NeoSwOrin {
    fn name(&self) -> &str {
        "Neo-SW (Orin)"
    }

    fn simulate_frame(&self, w: &WorkloadFrame) -> FrameTiming {
        let base = &self.base;
        let mut t = base.simulate_frame(w);

        // Sorting: one read+write pass over the (GPU-tiled) table plus
        // incoming merge — the 82.8% sorting-traffic cut of Figure 10(a).
        let table_gpu = w.table_entries as f64 * base.dup_factor;
        let inc_gpu = w.incoming as f64 * base.dup_factor;
        let sort_bytes = (table_gpu * base.sort_record_bytes * 2.0
            + inc_gpu * base.sort_record_bytes * 4.0) as u64;
        // Irregular access + poor SIMD utilization: effective compute rate
        // is a fraction of the radix kernel's, so latency improves only
        // ~1.5× despite the traffic cut (paper: 1.54×).
        let radix_sort_compute = table_gpu * base.radix_passes * 2.0 / 40.0e9;
        let sort = StageTiming {
            compute_s: radix_sort_compute * 0.9,
            memory_s: self.base.dram.transfer_time(sort_bytes) * 2.4,
            bytes: sort_bytes,
        };
        t.stages[1] = sort;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_pipeline::Stage;

    #[test]
    fn qhd_sorting_is_bandwidth_bound() {
        let orin = OrinAgx::new();
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let t = orin.simulate_frame(&w);
        assert!(t.stage(Stage::Sorting).memory_bound());
        // Sorting dominates traffic (paper: ~91% at QHD).
        let frac = t.stage(Stage::Sorting).bytes as f64 / t.total_bytes() as f64;
        assert!(frac > 0.75, "sorting traffic fraction {frac:.2}");
    }

    #[test]
    fn qhd_rasterization_is_compute_bound() {
        let orin = OrinAgx::new();
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let t = orin.simulate_frame(&w);
        assert!(!t.stage(Stage::Rasterization).memory_bound());
        // Rasterization dominates runtime on the GPU (paper: ~68.8%).
        let frac = t.stage(Stage::Rasterization).latency_s() / t.latency_s();
        assert!(frac > 0.5, "raster runtime fraction {frac:.2}");
    }

    #[test]
    fn orin_qhd_fps_near_paper() {
        let orin = OrinAgx::new();
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let fps = orin.simulate_frame(&w).fps();
        // Paper: ~10 FPS at QHD.
        assert!((5.0..=20.0).contains(&fps), "fps {fps:.1}");
    }

    #[test]
    fn neo_sw_cuts_traffic_but_not_latency() {
        let orin = OrinAgx::new();
        let sw = OrinAgx::new().neo_sw();
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let t0 = orin.simulate_frame(&w);
        let t1 = sw.simulate_frame(&w);
        let traffic_cut = 1.0 - t1.total_bytes() as f64 / t0.total_bytes() as f64;
        let speedup = t0.latency_s() / t1.latency_s();
        // Figure 10: ~70% traffic cut, only ~1.1× end-to-end speedup.
        assert!(traffic_cut > 0.5, "traffic cut {traffic_cut:.2}");
        assert!((1.0..=1.6).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn higher_resolution_lowers_fps() {
        let orin = OrinAgx::new();
        let hd = WorkloadFrame::synthetic(1_400_000, 1280, 720);
        let qhd = WorkloadFrame::synthetic_qhd(1_400_000);
        assert!(orin.simulate_frame(&hd).fps() > orin.simulate_frame(&qhd).fps());
    }
}
