//! The Neo accelerator model (Section 5).
//!
//! Neo = Preprocessing Engine (projection/color/duplication units) +
//! Sorting Engine (16 Sorting Cores, each a BSU + MSU+ with
//! double-buffered I/O) + Rasterization Engine (4 cores × 4 SCU + 4 ITU,
//! pipelined). The reuse-and-update algorithm makes sorting a *single*
//! off-chip pass over the per-tile tables plus a small incoming-table
//! sort; on-the-fly ITU bitmaps remove GSCore's bitmap traffic; deferred
//! depth updates remove the separate depth-refresh pass.

use crate::devices::Device;
use crate::dram::DramModel;
use crate::{FrameTiming, StageTiming, WorkloadFrame};
use neo_sort::ENTRY_BYTES;

/// Neo accelerator model with the Table 1 configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NeoDevice {
    /// DRAM channel.
    pub dram: DramModel,
    /// Clock frequency in Hz (1 GHz per Table 3).
    pub clock_hz: f64,
    /// Sorting cores (Table 1: 16 BSU + 16 MSU+).
    pub sorting_cores: u32,
    /// Rasterization cores (Table 1: 4, each with 4 SCU + 4 ITU).
    pub raster_cores: u32,
    /// Entries a sorting core retires per cycle (BSU network output rate).
    pub sort_entries_per_cycle_per_core: f64,
    /// Blend operations per cycle per rasterization core (4 SCUs; ITU
    /// pipelining keeps them fed — Figure 14).
    pub blends_per_cycle_per_core: f64,
    /// Bytes of 2D features read per table entry during rasterization
    /// (no bitmap traffic — ITUs generate bitmaps on the fly).
    pub raster_bytes_per_entry: f64,
    /// Gaussians projected per cycle (4 projection units).
    pub project_per_cycle: f64,
    /// Deferred depth update enabled (Neo's design). Disabling models the
    /// Section 4.4 ablation: a separate random-access depth-refresh pass.
    pub deferred_depth_update: bool,
    /// Depth update executed by the Rasterization Engine (full Neo).
    /// Disabling models Figure 18's "Neo-S": the Sorting Engine alone on
    /// top of GSCore, requiring post-processing for table metadata.
    pub raster_engine_depth_update: bool,
}

impl NeoDevice {
    /// Creates the default (full) Neo model on the given DRAM channel.
    pub fn new(dram: DramModel) -> Self {
        Self {
            dram,
            clock_hz: 1e9,
            sorting_cores: 16,
            raster_cores: 4,
            sort_entries_per_cycle_per_core: 4.0,
            blends_per_cycle_per_core: 4.0,
            raster_bytes_per_entry: 24.0,
            project_per_cycle: 4.0,
            deferred_depth_update: true,
            raster_engine_depth_update: true,
        }
    }

    /// The paper's default platform: 51.2 GB/s LPDDR4.
    pub fn paper_default() -> Self {
        Self::new(DramModel::lpddr4_51_2())
    }

    /// Figure 18's "Neo-S" ablation: Neo's Sorting Engine bolted onto
    /// GSCore without the co-designed Rasterization Engine — depth/valid
    /// metadata updates run as a separate post-processing pass.
    pub fn sorting_engine_only(mut self) -> Self {
        self.raster_engine_depth_update = false;
        self
    }

    /// Section 4.4 ablation: disable deferred depth updates (adds a
    /// random-access depth-refresh pass).
    #[must_use]
    pub fn without_deferred_depth_update(mut self) -> Self {
        self.deferred_depth_update = false;
        self
    }
}

impl Device for NeoDevice {
    fn name(&self) -> &str {
        "Neo"
    }

    fn simulate_frame(&self, w: &WorkloadFrame) -> FrameTiming {
        let table = w.table_entries as f64;
        let incoming = w.incoming as f64;
        let eb = ENTRY_BYTES as f64;

        // Feature extraction: stream features once; the duplication unit's
        // verification step emits only *incoming* per-tile entries.
        let fe_bytes = (w.n_gaussians as f64 * w.feature_bytes as f64 + incoming * eb) as u64;
        let fe = StageTiming {
            compute_s: w.n_projected as f64 / (self.project_per_cycle * self.clock_hz),
            memory_s: self.dram.transfer_time(fe_bytes),
            bytes: fe_bytes,
        };

        // Sorting: Dynamic Partial Sorting reads + writes each table chunk
        // once; the incoming tables are read, sorted on-chip, and written
        // merged (the MSU+ fuses insertion and deletion into the same
        // writeback).
        let mut sort_bytes = (table * eb * 2.0 + incoming * eb * 2.0) as u64;
        let mut sort_extra_s = 0.0;
        if !self.deferred_depth_update {
            // Separate depth refresh: random-access reads of the feature
            // table plus a table rewrite (paper: +33.2% traffic).
            let refresh = (table * eb) as u64;
            sort_bytes += refresh;
            sort_extra_s += self.dram.random_access_time(refresh);
        }
        if !self.raster_engine_depth_update {
            // Neo-S: post-processing pass over tables for depth/valid
            // metadata, serialized after sorting.
            let post = (table * eb * 2.0) as u64;
            sort_bytes += post;
            sort_extra_s += self.dram.transfer_time(post);
        }
        let sort = StageTiming {
            compute_s: table
                / (self.sort_entries_per_cycle_per_core
                    * self.sorting_cores as f64
                    * self.clock_hz)
                + sort_extra_s,
            memory_s: self.dram.transfer_time(sort_bytes) + sort_extra_s,
            bytes: sort_bytes,
        };

        // Rasterization: stream 2D features per table entry (no bitmap
        // reads — ITUs regenerate them), blend in subtile groups, write
        // pixels; depth updates piggyback on this pass for free.
        let raster_bytes = (table * self.raster_bytes_per_entry) as u64 + w.pixels * 4;
        let raster = StageTiming {
            compute_s: w.blend_ops as f64
                / (self.blends_per_cycle_per_core * self.raster_cores as f64 * 4.0 * self.clock_hz),
            memory_s: self.dram.transfer_time(raster_bytes),
            bytes: raster_bytes,
        };

        FrameTiming {
            stages: [fe, sort, raster],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_pipeline::Stage;

    fn qhd() -> WorkloadFrame {
        WorkloadFrame::synthetic_qhd(1_400_000)
    }

    #[test]
    fn neo_hits_realtime_qhd() {
        let neo = NeoDevice::paper_default();
        let fps = neo.simulate_frame(&qhd()).fps();
        // Paper: 99.3 FPS average at QHD; requires ≥60.
        assert!(fps > 60.0, "Neo QHD fps {fps:.1}");
        assert!(fps < 250.0, "sanity upper bound, got {fps:.1}");
    }

    #[test]
    fn sorting_is_no_longer_dominant() {
        let neo = NeoDevice::paper_default();
        let t = neo.simulate_frame(&qhd());
        let frac = t.stage(Stage::Sorting).bytes as f64 / t.total_bytes() as f64;
        assert!(frac < 0.4, "Neo sorting traffic share {frac:.2}");
    }

    #[test]
    fn non_deferred_depth_update_adds_traffic() {
        let neo = NeoDevice::paper_default();
        let ablated = NeoDevice::paper_default().without_deferred_depth_update();
        let t0 = neo.simulate_frame(&qhd());
        let t1 = ablated.simulate_frame(&qhd());
        let overhead = t1.total_bytes() as f64 / t0.total_bytes() as f64 - 1.0;
        // Paper: 33.2% more traffic without the optimization.
        assert!((0.1..=0.6).contains(&overhead), "overhead {overhead:.2}");
        assert!(t1.latency_s() > t0.latency_s());
    }

    #[test]
    fn neo_s_is_between_gscore_and_full_neo() {
        use crate::devices::GsCore;
        let w = qhd();
        let gscore = GsCore::scaled_16().simulate_frame(&w);
        let neo_s = NeoDevice::paper_default()
            .sorting_engine_only()
            .simulate_frame(&w);
        let neo = NeoDevice::paper_default().simulate_frame(&w);
        assert!(neo.latency_s() < neo_s.latency_s(), "full Neo fastest");
        assert!(neo_s.latency_s() < gscore.latency_s(), "Neo-S beats GSCore");
        assert!(neo.total_bytes() < neo_s.total_bytes());
        assert!(neo_s.total_bytes() < gscore.total_bytes());
    }

    #[test]
    fn churn_increases_cost_but_degrades_gracefully() {
        let neo = NeoDevice::paper_default();
        let calm = qhd();
        let mut rapid = calm;
        // 16× camera speed: much higher churn (Figure 17b). Retention
        // loss saturates sub-linearly with speed (the camera cannot leave
        // the scene), so 16× speed ≈ 8× churn.
        rapid.incoming = calm.incoming * 8;
        rapid.outgoing = calm.outgoing * 8;
        rapid.table_entries = calm.table_entries + rapid.incoming;
        let f_calm = neo.simulate_frame(&calm).fps();
        let f_rapid = neo.simulate_frame(&rapid).fps();
        assert!(f_rapid < f_calm);
        assert!(
            f_rapid > 60.0,
            "Neo must hold 60 FPS under rapid motion, got {f_rapid:.1}"
        );
    }
}
