//! Device models: Orin AGX (edge GPU), GSCore (prior ASIC), and Neo.

mod gpu;
mod gscore;
mod neo;

pub use gpu::OrinAgx;
pub use gscore::GsCore;
pub use neo::NeoDevice;

use crate::{FrameTiming, WorkloadFrame};

/// A device that can execute one frame of the 3DGS pipeline.
pub trait Device {
    /// Human-readable device name ("Orin AGX", "GSCore", "Neo").
    fn name(&self) -> &str;

    /// Simulates one frame of `workload`, returning per-stage timing and
    /// traffic.
    fn simulate_frame(&self, workload: &WorkloadFrame) -> FrameTiming;

    /// Simulates a frame sequence, returning per-frame timings.
    fn simulate_frames(&self, workloads: &[WorkloadFrame]) -> Vec<FrameTiming> {
        workloads.iter().map(|w| self.simulate_frame(w)).collect()
    }

    /// Mean FPS over a frame sequence.
    fn mean_fps(&self, workloads: &[WorkloadFrame]) -> f64 {
        if workloads.is_empty() {
            return 0.0;
        }
        let total: f64 = workloads
            .iter()
            .map(|w| self.simulate_frame(w).latency_s())
            .sum();
        workloads.len() as f64 / total
    }

    /// Total DRAM traffic in bytes over a frame sequence.
    fn total_traffic(&self, workloads: &[WorkloadFrame]) -> u64 {
        workloads
            .iter()
            .map(|w| self.simulate_frame(w).total_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramModel;

    #[test]
    fn paper_qhd_ordering_holds() {
        // Figure 15's headline shape at QHD: Neo > GSCore > Orin.
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let orin = OrinAgx::new();
        let gscore = GsCore::new(16, DramModel::lpddr4_51_2());
        let neo = NeoDevice::new(DramModel::lpddr4_51_2());
        let f_orin = orin.simulate_frame(&w).fps();
        let f_gscore = gscore.simulate_frame(&w).fps();
        let f_neo = neo.simulate_frame(&w).fps();
        assert!(
            f_neo > f_gscore && f_gscore > f_orin,
            "neo {f_neo:.1} > gscore {f_gscore:.1} > orin {f_orin:.1}"
        );
        // Factor shapes: Neo ≈ 3–8× GSCore, ≈ 5–14× Orin at QHD.
        let vs_gscore = f_neo / f_gscore;
        let vs_orin = f_neo / f_orin;
        assert!((2.5..=9.0).contains(&vs_gscore), "vs gscore {vs_gscore:.2}");
        assert!((4.0..=16.0).contains(&vs_orin), "vs orin {vs_orin:.2}");
    }

    #[test]
    fn traffic_ordering_holds() {
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let orin = OrinAgx::new();
        let gscore = GsCore::new(16, DramModel::lpddr4_51_2());
        let neo = NeoDevice::new(DramModel::lpddr4_51_2());
        let t_orin = orin.simulate_frame(&w).total_bytes();
        let t_gscore = gscore.simulate_frame(&w).total_bytes();
        let t_neo = neo.simulate_frame(&w).total_bytes();
        assert!(t_neo < t_gscore && t_gscore < t_orin);
        // Neo cuts ≥60% vs GSCore and ≥85% vs the GPU (paper: 81%/94%).
        assert!(
            (t_neo as f64) < t_gscore as f64 * 0.4,
            "neo {t_neo} vs gscore {t_gscore}"
        );
        assert!(
            (t_neo as f64) < t_orin as f64 * 0.15,
            "neo {t_neo} vs orin {t_orin}"
        );
    }

    #[test]
    fn mean_fps_over_sequence() {
        let w = WorkloadFrame::synthetic_qhd(500_000);
        let neo = NeoDevice::new(DramModel::lpddr4_51_2());
        let seq = vec![w; 5];
        let fps = neo.mean_fps(&seq);
        assert!((fps - neo.simulate_frame(&w).fps()).abs() / fps < 1e-9);
        assert!(neo.total_traffic(&seq) == 5 * neo.simulate_frame(&w).total_bytes());
    }
}
