//! GSCore model (Lee et al., ASPLOS 2024) — the state-of-the-art 3DGS
//! ASIC the paper compares against.
//!
//! GSCore sorts every frame from scratch with *hierarchical sorting*
//! (coarse depth bucketing + fine per-bucket sorting) and rasterizes with
//! subtile skipping. Its subtile bitmaps are produced early in the
//! pipeline and carried through DRAM to rasterization — traffic Neo later
//! eliminates with on-the-fly ITUs. Per the paper's methodology, the
//! original 4-core design is scaled to 16 cores for high-resolution
//! comparisons.

use crate::devices::Device;
use crate::dram::DramModel;
use crate::{FrameTiming, StageTiming, WorkloadFrame};

/// GSCore model parameters. Traffic constants are calibrated so the stage
/// shares match Figure 5 (sorting ≈ 63–69% of DRAM traffic) and the
/// FPS-vs-resolution curve matches Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct GsCore {
    /// Number of sorting/rasterization core pairs (4 in the original
    /// design, 16 in the paper's scaled comparison).
    pub cores: u32,
    /// DRAM channel.
    pub dram: DramModel,
    /// Clock frequency in Hz (1 GHz per Table 3).
    pub clock_hz: f64,
    /// Off-chip bytes moved per tile assignment by hierarchical sorting:
    /// duplicate emission + coarse bucketing pass + fine sorting passes +
    /// re-spills for buckets exceeding on-chip capacity.
    pub sort_bytes_per_entry: f64,
    /// Bytes of 2D features + subtile bitmap read per entry during
    /// rasterization.
    pub raster_bytes_per_entry: f64,
    /// Blend operations per cycle per core (4 subtile units/core, partly
    /// stalled on bitmap fetches).
    pub blends_per_cycle_per_core: f64,
    /// Entries processed per cycle per sorting core.
    pub sort_entries_per_cycle_per_core: f64,
    /// Gaussians projected per cycle (4 projection units).
    pub project_per_cycle: f64,
}

impl GsCore {
    /// Creates a GSCore model with `cores` cores and the given DRAM.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero.
    pub fn new(cores: u32, dram: DramModel) -> Self {
        assert!(cores > 0, "core count must be positive");
        Self {
            cores,
            dram,
            clock_hz: 1e9,
            sort_bytes_per_entry: 240.0,
            raster_bytes_per_entry: 40.0,
            blends_per_cycle_per_core: 3.2,
            sort_entries_per_cycle_per_core: 1.0,
            project_per_cycle: 4.0,
        }
    }

    /// The paper's Figure 3 configuration: 4 cores, 51.2 GB/s.
    pub fn paper_default() -> Self {
        Self::new(4, DramModel::lpddr4_51_2())
    }

    /// The scaled 16-core configuration used against Neo (Figure 15).
    pub fn scaled_16() -> Self {
        Self::new(16, DramModel::lpddr4_51_2())
    }
}

impl Device for GsCore {
    fn name(&self) -> &str {
        "GSCore"
    }

    fn simulate_frame(&self, w: &WorkloadFrame) -> FrameTiming {
        let d = w.duplicates as f64;
        let cores = self.cores as f64;

        // Feature extraction: stream the feature table once; write 2D
        // features + subtile bitmaps for every duplicate.
        let fe_bytes = (w.n_gaussians as f64 * w.feature_bytes as f64) as u64;
        let fe = StageTiming {
            compute_s: w.n_projected as f64 / (self.project_per_cycle * self.clock_hz),
            memory_s: self.dram.transfer_time(fe_bytes),
            bytes: fe_bytes,
        };

        // Sorting from scratch: hierarchical multi-pass over all entries.
        let sort_bytes = (d * self.sort_bytes_per_entry) as u64;
        let sort = StageTiming {
            compute_s: d / (self.sort_entries_per_cycle_per_core * cores * self.clock_hz),
            memory_s: self.dram.transfer_time(sort_bytes),
            bytes: sort_bytes,
        };

        // Rasterization: subtile blending; reads 2D features + bitmaps.
        let raster_bytes = (d * self.raster_bytes_per_entry) as u64 + w.pixels * 4;
        let raster = StageTiming {
            compute_s: w.blend_ops as f64
                / (self.blends_per_cycle_per_core * cores * self.clock_hz),
            memory_s: self.dram.transfer_time(raster_bytes),
            bytes: raster_bytes,
        };

        FrameTiming {
            stages: [fe, sort, raster],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_pipeline::Stage;

    #[test]
    fn fig3_resolution_curve_shape() {
        // 4 cores, 51.2 GB/s: real-time at HD, far below 60 FPS at QHD.
        let g = GsCore::paper_default();
        let n = 1_400_000;
        let hd = g
            .simulate_frame(&WorkloadFrame::synthetic(n, 1280, 720))
            .fps();
        let fhd = g
            .simulate_frame(&WorkloadFrame::synthetic(n, 1920, 1080))
            .fps();
        let qhd = g.simulate_frame(&WorkloadFrame::synthetic_qhd(n)).fps();
        assert!(hd > 55.0, "HD ≈ 60+ FPS, got {hd:.1}");
        assert!(
            fhd < hd && qhd < fhd,
            "{hd:.1} > {fhd:.1} > {qhd:.1} required"
        );
        assert!(qhd < 30.0, "QHD well below SLO, got {qhd:.1}");
        // HD:QHD ratio ≈ 4× in the paper (66.7 vs 15.8).
        let ratio = hd / qhd;
        assert!((2.5..=6.5).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn fig4_bandwidth_matters_more_than_cores() {
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let base = GsCore::new(4, DramModel::lpddr4_51_2())
            .simulate_frame(&w)
            .fps();
        let more_cores = GsCore::new(16, DramModel::lpddr4_51_2())
            .simulate_frame(&w)
            .fps();
        let more_bw = GsCore::new(4, DramModel::lpddr5_204_8())
            .simulate_frame(&w)
            .fps();
        // Paper: 4→16 cores at 51.2 GB/s gives ~1.12×; 4× bandwidth ~2.2×+.
        let core_gain = more_cores / base;
        let bw_gain = more_bw / base;
        assert!(
            core_gain < 1.6,
            "core scaling should be weak: {core_gain:.2}"
        );
        assert!(
            bw_gain > 1.8,
            "bandwidth scaling should be strong: {bw_gain:.2}"
        );
        assert!(bw_gain > core_gain);
    }

    #[test]
    fn sorting_dominates_traffic() {
        let g = GsCore::scaled_16();
        let t = g.simulate_frame(&WorkloadFrame::synthetic_qhd(1_400_000));
        let frac = t.stage(Stage::Sorting).bytes as f64 / t.total_bytes() as f64;
        // Paper Figure 5: 63–69%.
        assert!((0.5..=0.85).contains(&frac), "sorting share {frac:.2}");
    }

    #[test]
    fn cores_scale_compute_only() {
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let c4 = GsCore::new(4, DramModel::lpddr5_204_8()).simulate_frame(&w);
        let c16 = GsCore::new(16, DramModel::lpddr5_204_8()).simulate_frame(&w);
        assert!(c16.latency_s() < c4.latency_s());
        assert_eq!(
            c16.total_bytes(),
            c4.total_bytes(),
            "traffic is core-independent"
        );
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_rejected() {
        let _ = GsCore::new(0, DramModel::lpddr4_51_2());
    }
}
