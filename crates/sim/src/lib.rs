//! Cycle-level performance model of 3DGS rendering devices.
//!
//! Reproduces the paper's evaluation methodology: a simulator driven by
//! per-frame workload statistics, with timing parameters taken from the
//! hardware configuration (Table 1) and off-chip memory modelled as an
//! LPDDR4-class channel. Three devices are modelled:
//!
//! * [`devices::OrinAgx`] — the NVIDIA Jetson Orin AGX edge-GPU baseline
//!   (roofline-style: CUB radix-sort traffic + CUDA α-blending kernel);
//! * [`devices::GsCore`] — the GSCore ASIC (hierarchical sorting, subtile
//!   rasterization), scalable in core count like Figure 4;
//! * [`devices::NeoDevice`] — the Neo accelerator (reuse-and-update
//!   sorting engine + rasterization engine with ITU/SCU pipelining), with
//!   ablation switches for Figure 18 (Neo-S = sorting engine only).
//!
//! Latency per frame is the sum over pipeline stages of
//! `max(compute time, DRAM time)` — each stage is internally overlapped
//! (double-buffered I/O) but stages are serialized, which matches the
//! coarse behaviour of the paper's pipeline.
//!
//! The area/power component model ([`asic`]) reproduces Tables 3–4.
//!
//! # Examples
//!
//! ```
//! use neo_sim::{devices::{Device, GsCore, NeoDevice}, dram::DramModel, WorkloadFrame};
//!
//! let w = WorkloadFrame::synthetic_qhd(350_000);
//! let gscore = GsCore::new(16, DramModel::lpddr4_51_2());
//! let neo = NeoDevice::new(DramModel::lpddr4_51_2());
//! let tg = gscore.simulate_frame(&w);
//! let tn = neo.simulate_frame(&w);
//! assert!(tn.fps() > tg.fps(), "Neo must outperform GSCore at QHD");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod asic;
pub mod cycle;
pub mod devices;
pub mod dram;
mod timing;
mod workload;

pub use timing::{FrameTiming, StageTiming};
pub use workload::{WorkloadFrame, BLEND_OVERDRAW};
