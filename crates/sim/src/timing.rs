//! Frame-timing results produced by device models.

use neo_pipeline::{Stage, TrafficLedger};

/// Timing of one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTiming {
    /// Pure compute time in seconds (all units busy, no memory stalls).
    pub compute_s: f64,
    /// DRAM transfer time in seconds for this stage's traffic.
    pub memory_s: f64,
    /// DRAM bytes moved by this stage.
    pub bytes: u64,
}

impl StageTiming {
    /// The stage's latency: compute and memory overlap within a stage
    /// (double-buffered I/O), so the slower one dominates.
    pub fn latency_s(&self) -> f64 {
        self.compute_s.max(self.memory_s)
    }

    /// True when the stage is limited by DRAM bandwidth.
    pub fn memory_bound(&self) -> bool {
        self.memory_s >= self.compute_s
    }
}

/// Timing of one full frame on a device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameTiming {
    /// Per-stage timings in pipeline order (feature extraction + culling,
    /// sorting, rasterization).
    pub stages: [StageTiming; 3],
}

impl FrameTiming {
    /// Frame latency in seconds (stages serialized).
    pub fn latency_s(&self) -> f64 {
        self.stages.iter().map(StageTiming::latency_s).sum()
    }

    /// Frame latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s() * 1e3
    }

    /// Frames per second this latency sustains.
    pub fn fps(&self) -> f64 {
        let l = self.latency_s();
        if l <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / l
        }
    }

    /// Total DRAM bytes for the frame.
    pub fn total_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.bytes).sum()
    }

    /// Stage timing by pipeline stage.
    pub fn stage(&self, stage: Stage) -> StageTiming {
        match stage {
            Stage::FeatureExtraction => self.stages[0],
            Stage::Sorting => self.stages[1],
            Stage::Rasterization => self.stages[2],
        }
    }

    /// Converts stage bytes into a [`TrafficLedger`] (all charged as
    /// reads+writes combined under reads for reporting totals).
    pub fn to_ledger(&self) -> TrafficLedger {
        let mut l = TrafficLedger::new();
        l.read(Stage::FeatureExtraction, self.stages[0].bytes);
        l.read(Stage::Sorting, self.stages[1].bytes);
        l.read(Stage::Rasterization, self.stages[2].bytes);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> FrameTiming {
        FrameTiming {
            stages: [
                StageTiming {
                    compute_s: 0.001,
                    memory_s: 0.002,
                    bytes: 100,
                },
                StageTiming {
                    compute_s: 0.004,
                    memory_s: 0.003,
                    bytes: 200,
                },
                StageTiming {
                    compute_s: 0.005,
                    memory_s: 0.001,
                    bytes: 50,
                },
            ],
        }
    }

    #[test]
    fn latency_sums_stage_maxima() {
        let t = timing();
        assert!((t.latency_s() - (0.002 + 0.004 + 0.005)).abs() < 1e-12);
        assert!((t.latency_ms() - 11.0).abs() < 1e-9);
        assert!((t.fps() - 1.0 / 0.011).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_detection() {
        let t = timing();
        assert!(t.stage(Stage::FeatureExtraction).memory_bound());
        assert!(!t.stage(Stage::Sorting).memory_bound());
    }

    #[test]
    fn totals_and_ledger() {
        let t = timing();
        assert_eq!(t.total_bytes(), 350);
        assert_eq!(t.to_ledger().total(), 350);
    }

    #[test]
    fn zero_latency_gives_infinite_fps() {
        assert!(FrameTiming::default().fps().is_infinite());
    }
}
