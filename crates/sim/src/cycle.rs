//! Cycle-level, event-driven model of the Sorting Engine.
//!
//! The analytic device models in [`crate::devices`] charge each stage
//! `max(compute, traffic/bandwidth)`. This module checks that abstraction
//! against a finer model: 16 Sorting Cores with double-buffered I/O
//! contending for one DRAM channel, processing real per-tile chunk jobs.
//! Figure 4's core finding — more cores don't help when the channel is
//! saturated — falls out of the queueing behaviour here rather than being
//! baked into a formula.
//!
//! Timing parameters follow the microarchitecture of Section 5.3: a chunk
//! is loaded into the input buffer, cut into 16-entry sub-chunks for the
//! BSU (a 10-stage pipelined network), merged by the MSU+ (16 entries per
//! cycle per merge level), and written back from the output buffer while
//! the next chunk's sort proceeds.

use crate::dram::DramModel;
use neo_sort::bitonic::network_stages;
use neo_sort::ENTRY_BYTES;

/// One chunk of sorting work (load → sort → store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkJob {
    /// Entries in the chunk.
    pub entries: u32,
}

impl ChunkJob {
    /// Sort latency in core cycles: BSU fill + pipelined drain, plus one
    /// 16-wide MSU+ pass per merge level.
    pub fn sort_cycles(&self) -> u64 {
        let n = self.entries as u64;
        if n <= 1 {
            return 1;
        }
        let sub_chunks = n.div_ceil(16);
        let bsu = network_stages(16) as u64 + sub_chunks; // fill + drain
        let merge_levels = 64 - sub_chunks.saturating_sub(1).leading_zeros() as u64;
        let msu = (n * merge_levels).div_ceil(16);
        bsu + msu
    }

    /// Bytes moved per direction (load or store).
    pub fn bytes(&self) -> u64 {
        self.entries as u64 * ENTRY_BYTES as u64
    }
}

/// Builds the chunk-job list for a set of per-tile table lengths.
pub fn jobs_from_tables(table_lens: &[u32], chunk_size: u32) -> Vec<ChunkJob> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut jobs = Vec::new();
    for &len in table_lens {
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(chunk_size);
            jobs.push(ChunkJob { entries: take });
            remaining -= take;
        }
    }
    jobs
}

/// A single shared DRAM channel serving requests in arrival order.
#[derive(Debug, Clone)]
struct Channel {
    bytes_per_cycle: f64,
    busy_until: u64,
}

impl Channel {
    fn new(dram: &DramModel, clock_hz: f64) -> Self {
        Self {
            bytes_per_cycle: dram.effective_bandwidth() / clock_hz,
            busy_until: 0,
        }
    }

    /// Schedules a transfer requested at `cycle`; returns its end cycle.
    fn transfer(&mut self, cycle: u64, bytes: u64) -> u64 {
        let start = self.busy_until.max(cycle);
        let duration = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        self.busy_until = start + duration.max(1);
        self.busy_until
    }
}

/// Outcome of a cycle-level Sorting Engine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleReport {
    /// Total cycles until the last writeback completes.
    pub total_cycles: u64,
    /// Sum of core compute cycles across all jobs.
    pub compute_cycles: u64,
    /// Total DRAM bytes moved.
    pub bytes: u64,
    /// Number of jobs executed.
    pub jobs: usize,
}

impl CycleReport {
    /// Wall-clock seconds at `clock_hz`.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.total_cycles as f64 / clock_hz
    }

    /// Mean core utilization (compute cycles / (cores × total)).
    pub fn utilization(&self, cores: usize) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.compute_cycles as f64 / (self.total_cycles as f64 * cores as f64)
    }
}

/// Simulates the Sorting Engine executing `jobs` on `cores` cores sharing
/// one DRAM channel at 1 GHz-normalized cycles.
///
/// Each core double-buffers: the load of its next chunk may overlap the
/// sort of the current one, and stores are issued asynchronously; the
/// single channel is the serialization point.
///
/// # Panics
///
/// Panics when `cores` is zero.
pub fn simulate_sorting_engine(
    jobs: &[ChunkJob],
    cores: usize,
    dram: &DramModel,
    clock_hz: f64,
) -> CycleReport {
    assert!(cores > 0, "core count must be positive");
    let mut channel = Channel::new(dram, clock_hz);
    let mut report = CycleReport {
        total_cycles: 0,
        compute_cycles: 0,
        bytes: 0,
        jobs: jobs.len(),
    };
    if jobs.is_empty() {
        return report;
    }

    // Round-robin static assignment (the Sorting Engine stripes tiles
    // across cores).
    let mut queues: Vec<Vec<ChunkJob>> = vec![Vec::new(); cores];
    for (i, job) in jobs.iter().enumerate() {
        queues[i % cores].push(*job);
    }

    // Per-core progress. Each job issues two memory ops in order
    // (load, store) with precedence:
    //   request(load_j)  = sort_start(j-1)   (input buffer frees then)
    //   sort_start(j)    = max(done(load_j), sort_done(j-1))
    //   request(store_j) = sort_done(j)
    #[derive(Clone, Copy)]
    struct CoreState {
        job: usize,
        // false = next op is the load of `job`, true = its store.
        store_pending: bool,
        sort_start_prev: u64,
        sort_done_prev: u64,
        // Set when the pending store's request time is known.
        store_request: u64,
    }
    let mut state = vec![
        CoreState {
            job: 0,
            store_pending: false,
            sort_start_prev: 0,
            sort_done_prev: 0,
            store_request: 0,
        };
        cores
    ];

    loop {
        // Frontier: the next memory op of each unfinished core with its
        // request cycle; serve the earliest request first (FIFO in time).
        let mut best: Option<(u64, usize)> = None;
        for (c, st) in state.iter().enumerate() {
            if st.job >= queues[c].len() {
                continue;
            }
            let request = if st.store_pending {
                st.store_request
            } else {
                // Load of job `st.job` may issue once the previous sort
                // started (double buffering frees the input buffer).
                st.sort_start_prev
            };
            if best.map(|(r, _)| request < r).unwrap_or(true) {
                best = Some((request, c));
            }
        }
        let Some((request, c)) = best else { break };
        let job = queues[c][state[c].job];

        if !state[c].store_pending {
            let load_done = channel.transfer(request, job.bytes());
            let sort_start = load_done.max(state[c].sort_done_prev);
            let sort_done = sort_start + job.sort_cycles();
            state[c].sort_start_prev = sort_start;
            state[c].sort_done_prev = sort_done;
            state[c].store_request = sort_done;
            state[c].store_pending = true;
            report.compute_cycles += job.sort_cycles();
        } else {
            let store_done = channel.transfer(request, job.bytes());
            report.total_cycles = report.total_cycles.max(store_done);
            report.bytes += 2 * job.bytes();
            state[c].store_pending = false;
            state[c].job += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tables(tiles: usize, len: u32) -> Vec<u32> {
        vec![len; tiles]
    }

    #[test]
    fn jobs_split_tables_into_chunks() {
        let jobs = jobs_from_tables(&[600, 100, 0], 256);
        let sizes: Vec<u32> = jobs.iter().map(|j| j.entries).collect();
        assert_eq!(sizes, vec![256, 256, 88, 100]);
    }

    #[test]
    fn single_job_latency_is_load_sort_store() {
        let dram = DramModel::new(64.0, 1.0, 64); // 64 B/cycle at 1 GHz
        let job = ChunkJob { entries: 256 };
        let r = simulate_sorting_engine(&[job], 1, &dram, 1e9);
        let transfer = (job.bytes() as f64 / 64.0).ceil() as u64;
        assert_eq!(r.total_cycles, 2 * transfer + job.sort_cycles());
        assert_eq!(r.bytes, 2 * job.bytes());
    }

    #[test]
    fn saturated_channel_caps_throughput() {
        // Lots of work, narrow channel: runtime ≈ bytes / bandwidth
        // regardless of core count (the Figure 4 phenomenon).
        let dram = DramModel::lpddr4_51_2();
        let jobs = jobs_from_tables(&uniform_tables(920, 8192), 256);
        let r4 = simulate_sorting_engine(&jobs, 4, &dram, 1e9);
        let r16 = simulate_sorting_engine(&jobs, 16, &dram, 1e9);
        let ideal = (r4.bytes as f64 / (dram.effective_bandwidth() / 1e9)) as u64;
        assert!(
            (r16.total_cycles as f64) < ideal as f64 * 1.25,
            "16-core run within 25% of the bandwidth bound: {} vs {ideal}",
            r16.total_cycles
        );
        let core_gain = r4.total_cycles as f64 / r16.total_cycles as f64;
        assert!(
            core_gain < 1.3,
            "cores cannot buy much under saturation: {core_gain:.2}×"
        );
    }

    #[test]
    fn wide_channel_scales_with_cores() {
        // Huge bandwidth: compute-bound, so 4× cores ≈ 3×+ faster.
        let dram = DramModel::new(4096.0, 1.0, 64);
        let jobs = jobs_from_tables(&uniform_tables(512, 4096), 256);
        let r1 = simulate_sorting_engine(&jobs, 1, &dram, 1e9);
        let r4 = simulate_sorting_engine(&jobs, 4, &dram, 1e9);
        let gain = r1.total_cycles as f64 / r4.total_cycles as f64;
        assert!(gain > 3.0, "compute-bound core scaling {gain:.2}×");
        assert!(r1.utilization(1) > 0.8, "single core should stay busy");
    }

    #[test]
    fn agrees_with_analytic_sorting_stage() {
        // The analytic Neo model charges max(compute, memory) for the DPS
        // pass; the cycle model must land in the same regime (within 2×).
        use crate::devices::{Device, NeoDevice};
        use crate::WorkloadFrame;
        let w = WorkloadFrame::synthetic_qhd(1_400_000);
        let neo = NeoDevice::paper_default();
        let analytic_s = neo.simulate_frame(&w).stages[1].latency_s();

        let mean_table = (w.table_entries / w.occupied_tiles.max(1)) as u32;
        let tables = uniform_tables(w.occupied_tiles as usize, mean_table);
        let jobs = jobs_from_tables(&tables, 256);
        let r = simulate_sorting_engine(&jobs, 16, &neo.dram, neo.clock_hz);
        let cycle_s = r.seconds(neo.clock_hz);
        let ratio = cycle_s / analytic_s;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "cycle model {cycle_s:.4}s vs analytic {analytic_s:.4}s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn empty_job_list() {
        let dram = DramModel::lpddr4_51_2();
        let r = simulate_sorting_engine(&[], 16, &dram, 1e9);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.utilization(16), 0.0);
    }

    #[test]
    fn sort_cycles_monotone_in_size() {
        let small = ChunkJob { entries: 16 }.sort_cycles();
        let big = ChunkJob { entries: 256 }.sort_cycles();
        assert!(big > small);
        assert_eq!(ChunkJob { entries: 0 }.sort_cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_rejected() {
        let _ = simulate_sorting_engine(&[], 0, &DramModel::lpddr4_51_2(), 1e9);
    }
}
