//! Large-scene flythrough: warm-start temporal sorting over a Mill 19
//! style aerial scene — per-frame churn (incoming/outgoing Gaussians)
//! and temporal-cache hit rate as the camera sweeps, the stress scenario
//! of Figure 17(a).
//!
//! The sorter here is an *exact* full re-sort wrapped in the warm-start
//! temporal cache: frames whose tiles retain enough of the previous
//! population are repaired in a single pass instead of re-sorted, so the
//! blend orders stay exact while the sorting traffic collapses.
//!
//! Run: `cargo run --release --example large_scene_flythrough`

use neo_core::{
    NeoError, Parallelism, RenderEngine, RendererConfig, StrategyKind, WarmStartConfig,
};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use neo_sim::devices::{Device, NeoDevice};
use neo_sim::WorkloadFrame;

fn main() -> Result<(), NeoError> {
    let scene = ScenePreset::Building;
    // 0.2% of 5.4M Gaussians ≈ 10.8k — enough for stable statistics.
    let scale = 0.002;
    // Large frames are where the intra-frame worker pool pays off: shard
    // each frame's tiles across every available core. Output is
    // byte-identical to serial rendering at any thread count — and the
    // warm-start cache, being per-tile session state, shards with it.
    let config = RendererConfig::default()
        .without_image()
        .with_parallelism(Parallelism::Auto)
        .with_temporal_cache(WarmStartConfig::default());
    println!(
        "intra-frame parallelism: {} worker thread(s)",
        config.effective_threads()
    );
    let engine = RenderEngine::builder()
        .scene(scene.build_scaled(scale))
        .config(config)
        .strategy(StrategyKind::FullResort) // exact sorting, warm-started
        .build()?;
    println!("sorting strategy: {}", engine.strategy_name());
    let cloud = std::sync::Arc::clone(engine.scene());
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Qhd);
    let mut session = engine.session();
    let device = NeoDevice::paper_default();
    let inv = 1.0 / scale;

    println!(
        "flythrough over '{}' ({}k Gaussians instantiated, ~{:.1}M at full scale)\n",
        scene.name(),
        cloud.len() / 1000,
        cloud.len() as f64 * inv / 1e6
    );
    println!("frame | table entries | incoming | outgoing | cache hit | est. FPS (Neo hw)");
    println!("------+---------------+----------+----------+-----------+------------------");
    for i in 0..24 {
        let cam = sampler.frame(i);
        let fr = session.render_frame(&cam)?;
        let s = |v: usize| (v as f64 * inv).round() as u64;
        let w = WorkloadFrame {
            n_gaussians: s(cloud.len()),
            n_projected: s(fr.stats.projected),
            duplicates: s(fr.stats.duplicates),
            occupied_tiles: fr.stats.occupied_tiles as u64,
            pixels: 2560 * 1440,
            incoming: s(fr.incoming),
            outgoing: s(fr.outgoing),
            table_entries: (fr.total_table_entries() as f64 * inv).round() as u64,
            blend_ops: (2560.0 * 1440.0 * neo_sim::BLEND_OVERDRAW) as u64,
            feature_bytes: cloud.feature_record_bytes() as u64,
        };
        let fps = device.simulate_frame(&w).fps();
        println!(
            "  {i:>3} | {:>13} | {:>8} | {:>8} | {:>8.0}% | {fps:>8.1}",
            w.table_entries,
            w.incoming,
            w.outgoing,
            fr.temporal.hit_rate() * 100.0
        );
    }
    println!(
        "\nEven with millions of Gaussians, per-frame churn stays a small fraction\n\
         of the table, so after the first frame nearly every tile is served from\n\
         the warm-start cache: exact blend orders at single-pass sorting cost."
    );
    Ok(())
}
