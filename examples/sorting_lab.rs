//! Sorting lab: poke at the paper's core algorithm in isolation.
//!
//! Builds a per-tile Gaussian table, perturbs it like a camera motion
//! would, and shows how Dynamic Partial Sorting's interleaved chunk
//! boundaries restore order over a few frames while a fixed-boundary
//! partial sort gets stuck (the Figure 9 experiment). Part 4 then defines
//! a *user* sorting strategy against the public [`SortingStrategy`] trait
//! — outside `neo-sort`, no enum edits — and runs it through a
//! [`RenderEngine`] next to Neo's built-in strategy.
//!
//! Run: `cargo run --release --example sorting_lab`

use neo_core::{NeoError, RenderEngine, RendererConfig, StrategyKind};
use neo_metrics::psnr;
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use neo_sort::dps::{chunk_ranges, dynamic_partial_sort, DpsConfig};
use neo_sort::strategies::{FrameOrder, TileSorter};
use neo_sort::{GaussianTable, SortCost, SortingStrategy, TableEntry, ENTRY_BYTES};

fn perturbed_table(n: usize, max_shift: usize) -> GaussianTable {
    let mut depths: Vec<f32> = (0..n).map(|i| i as f32).collect();
    // Deterministic pseudo-random block swaps with bounded displacement.
    let mut state = 0x9E3779B9u64;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let shift = (state >> 33) as usize % (max_shift + 1);
        if i + shift < n {
            depths.swap(i, i + shift);
        }
    }
    GaussianTable::from_entries(
        depths
            .into_iter()
            .enumerate()
            .map(|(i, d)| TableEntry::new(i as u32, d)),
    )
}

/// A fifth-party sorting strategy implemented purely against the public
/// trait: keep the inherited order, refresh membership (drop departed
/// IDs, append newcomers), and run **one odd-even transposition pass**
/// per frame — a deliberately naive single-pass reuse scheme to compare
/// against Dynamic Partial Sorting.
#[derive(Debug, Default)]
struct OddEvenTouchup {
    order: Vec<TableEntry>,
    frame: u64,
    total: SortCost,
}

impl SortingStrategy for OddEvenTouchup {
    fn name(&self) -> &str {
        "odd-even-touchup"
    }

    fn begin_frame(&mut self, frame_index: u64) {
        self.frame = frame_index;
    }

    fn order(&mut self, current: &[(u32, f32)]) -> FrameOrder {
        let depth_of: std::collections::HashMap<u32, f32> = current.iter().copied().collect();
        // Membership refresh: drop departed entries, update depths,
        // append newcomers at the back (they bubble in over time).
        let before: std::collections::HashSet<u32> = self.order.iter().map(|e| e.id).collect();
        self.order.retain(|e| depth_of.contains_key(&e.id));
        let outgoing = before.len() - self.order.len();
        for e in &mut self.order {
            e.depth = depth_of[&e.id];
        }
        let mut incoming = 0;
        for &(id, d) in current {
            if !before.contains(&id) {
                self.order.push(TableEntry::new(id, d));
                incoming += 1;
            }
        }
        // One odd-even transposition pass (parity alternates per frame).
        let start = (self.frame % 2) as usize;
        let mut cost = SortCost::new();
        for i in (start..self.order.len().saturating_sub(1)).step_by(2) {
            cost.compares += 1;
            if self.order[i].key() > self.order[i + 1].key() {
                self.order.swap(i, i + 1);
                cost.moves += 2;
            }
        }
        // Single read+write pass over the table, like DPS.
        let bytes = (self.order.len() * ENTRY_BYTES) as u64;
        cost.bytes_read += bytes;
        cost.bytes_written += bytes;
        cost.passes += 1;
        self.total += cost;
        FrameOrder {
            order: self.order.clone(),
            cost,
            incoming,
            outgoing,
            reuse: None,
        }
    }

    fn cost(&self) -> SortCost {
        self.total
    }
}

fn main() -> Result<(), NeoError> {
    let cfg = DpsConfig::default();
    println!(
        "Dynamic Partial Sorting lab (chunk = {} entries)\n",
        cfg.chunk_size
    );

    // Part 1: interleaved vs fixed boundaries (Figure 9).
    println!("table of 2048 entries, displacements ≤ 200:");
    println!("frame | inversions (interleaved) | inversions (fixed)");
    let mut inter = perturbed_table(2048, 200);
    let mut fixed = inter.clone();
    for frame in 0..6u64 {
        println!(
            "  {frame:>3} | {:>25} | {:>18}",
            inter.inversions(),
            fixed.inversions()
        );
        dynamic_partial_sort(&mut inter, frame, &cfg); // alternating parity
        dynamic_partial_sort(&mut fixed, 1, &cfg); // always aligned
    }
    println!(
        "  end | {:>25} | {:>18}\n",
        inter.inversions(),
        fixed.inversions()
    );

    // Part 2: the chunk layout itself.
    println!("chunk boundaries for a 1000-entry table:");
    for frame in [0u64, 1] {
        let ranges = chunk_ranges(1000, frame, cfg.chunk_size);
        let preview: Vec<String> = ranges.iter().take(4).map(|r| format!("{r:?}")).collect();
        println!("  frame parity {}: {} ...", frame % 2, preview.join(" "));
    }

    // Part 3: full reuse-and-update strategy vs full resort, cost-wise.
    println!("\nper-frame sorting cost on a drifting 4096-entry tile:");
    let ids: Vec<u32> = (0..4096).collect();
    let mut neo = TileSorter::new(StrategyKind::ReuseUpdate);
    let mut full = TileSorter::new(StrategyKind::FullResort);
    println!("frame | neo bytes | full-resort bytes");
    for f in 0..5 {
        let t = f as f32 * 0.05;
        let frame: Vec<(u32, f32)> = ids
            .iter()
            .map(|&id| (id, (id as f32 * 0.11 + t).sin() * 100.0 + id as f32 * 0.01))
            .collect();
        let a = neo.process_frame(&frame);
        let b = full.process_frame(&frame);
        println!(
            "  {f:>3} | {:>9} | {:>17}",
            a.cost.bytes_total(),
            b.cost.bytes_total()
        );
    }
    println!("\nReuse-and-update touches each entry once; radix re-sort makes 8 passes.");

    // Part 4: a user-defined strategy through the RenderEngine. The
    // OddEvenTouchup above never touches neo-sort internals — it is
    // registered with `strategy_factory` and rendered like any built-in.
    println!("\nuser-defined strategy vs Neo on a real scene (Family, 256x144):");
    let scene = ScenePreset::Family;
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(256, 144));
    let config = RendererConfig::default().with_tile_size(32);
    let neo_engine = RenderEngine::builder()
        .scene(scene.build_scaled(0.004))
        .config(config.clone())
        .strategy(StrategyKind::ReuseUpdate)
        .build()?;
    let custom_engine = RenderEngine::builder()
        .scene(std::sync::Arc::clone(neo_engine.scene()))
        .config(config.clone())
        .strategy_factory("odd-even-touchup", || Box::new(OddEvenTouchup::default()))
        .build()?;
    let baseline_engine = RenderEngine::builder()
        .scene(std::sync::Arc::clone(neo_engine.scene()))
        .config(config)
        .strategy(StrategyKind::FullResort)
        .build()?;
    let (mut neo_s, mut custom_s, mut base_s) = (
        neo_engine.session(),
        custom_engine.session(),
        baseline_engine.session(),
    );
    println!(
        "frame | {:>18} | {:>18}",
        "neo PSNR / KB", "touchup PSNR / KB"
    );
    for i in 0..6 {
        let cam = sampler.frame(i);
        let gt = base_s.render_frame(&cam)?.image.expect("image");
        let a = neo_s.render_frame(&cam)?;
        let b = custom_s.render_frame(&cam)?;
        println!(
            "  {i:>3} | {:>8.1} {:>6} KB | {:>8.1} {:>6} KB",
            psnr(&gt, a.image.as_ref().expect("image")).min(99.9),
            a.sort_cost.bytes_total() / 1024,
            psnr(&gt, b.image.as_ref().expect("image")).min(99.9),
            b.sort_cost.bytes_total() / 1024,
        );
    }
    println!(
        "\nBoth touch the table once per frame, but a single odd-even pass moves\n\
         entries one slot per frame — DPS's chunk-local sorting converges far\n\
         faster at the same traffic. Strategy '{}' ran entirely outside neo-sort.",
        custom_engine.strategy_name()
    );
    Ok(())
}
