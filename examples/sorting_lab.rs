//! Sorting lab: poke at the paper's core algorithm in isolation.
//!
//! Builds a per-tile Gaussian table, perturbs it like a camera motion
//! would, and shows how Dynamic Partial Sorting's interleaved chunk
//! boundaries restore order over a few frames while a fixed-boundary
//! partial sort gets stuck (the Figure 9 experiment).
//!
//! Run: `cargo run --release --example sorting_lab`

use neo_sort::dps::{chunk_ranges, dynamic_partial_sort, DpsConfig};
use neo_sort::strategies::{StrategyKind, TileSorter};
use neo_sort::{GaussianTable, TableEntry};

fn perturbed_table(n: usize, max_shift: usize) -> GaussianTable {
    let mut depths: Vec<f32> = (0..n).map(|i| i as f32).collect();
    // Deterministic pseudo-random block swaps with bounded displacement.
    let mut state = 0x9E3779B9u64;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let shift = (state >> 33) as usize % (max_shift + 1);
        if i + shift < n {
            depths.swap(i, i + shift);
        }
    }
    GaussianTable::from_entries(
        depths
            .into_iter()
            .enumerate()
            .map(|(i, d)| TableEntry::new(i as u32, d)),
    )
}

fn main() {
    let cfg = DpsConfig::default();
    println!(
        "Dynamic Partial Sorting lab (chunk = {} entries)\n",
        cfg.chunk_size
    );

    // Part 1: interleaved vs fixed boundaries (Figure 9).
    println!("table of 2048 entries, displacements ≤ 200:");
    println!("frame | inversions (interleaved) | inversions (fixed)");
    let mut inter = perturbed_table(2048, 200);
    let mut fixed = inter.clone();
    for frame in 0..6u64 {
        println!(
            "  {frame:>3} | {:>25} | {:>18}",
            inter.inversions(),
            fixed.inversions()
        );
        dynamic_partial_sort(&mut inter, frame, &cfg); // alternating parity
        dynamic_partial_sort(&mut fixed, 1, &cfg); // always aligned
    }
    println!(
        "  end | {:>25} | {:>18}\n",
        inter.inversions(),
        fixed.inversions()
    );

    // Part 2: the chunk layout itself.
    println!("chunk boundaries for a 1000-entry table:");
    for frame in [0u64, 1] {
        let ranges = chunk_ranges(1000, frame, cfg.chunk_size);
        let preview: Vec<String> = ranges.iter().take(4).map(|r| format!("{r:?}")).collect();
        println!("  frame parity {}: {} ...", frame % 2, preview.join(" "));
    }

    // Part 3: full reuse-and-update strategy vs full resort, cost-wise.
    println!("\nper-frame sorting cost on a drifting 4096-entry tile:");
    let ids: Vec<u32> = (0..4096).collect();
    let mut neo = TileSorter::new(StrategyKind::ReuseUpdate);
    let mut full = TileSorter::new(StrategyKind::FullResort);
    println!("frame | neo bytes | full-resort bytes");
    for f in 0..5 {
        let t = f as f32 * 0.05;
        let frame: Vec<(u32, f32)> = ids
            .iter()
            .map(|&id| (id, (id as f32 * 0.11 + t).sin() * 100.0 + id as f32 * 0.01))
            .collect();
        let a = neo.process_frame(&frame);
        let b = full.process_frame(&frame);
        println!(
            "  {f:>3} | {:>9} | {:>17}",
            a.cost.bytes_total(),
            b.cost.bytes_total()
        );
    }
    println!("\nReuse-and-update touches each entry once; radix re-sort makes 8 passes.");
}
