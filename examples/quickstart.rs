//! Quickstart: render a few frames of a benchmark scene with Neo's
//! reuse-and-update renderer and compare against the per-frame-resort
//! baseline.
//!
//! Run: `cargo run --release --example quickstart`

use neo_core::{RendererConfig, SplatRenderer};
use neo_metrics::psnr;
use neo_pipeline::Stage;
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};

fn main() {
    // 1. Build a (reduced-size) benchmark scene — "Family" from the
    //    paper's Tanks & Temples set — and its 30 FPS capture trajectory.
    let scene = ScenePreset::Family;
    let cloud = scene.build_scaled(0.005); // ~7k Gaussians for a quick demo
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(320, 180));
    println!("scene: {} ({} Gaussians)", scene.name(), cloud.len());

    // 2. Create the two renderers: Neo (reuse-and-update sorting) and the
    //    original-3DGS baseline (full re-sort every frame).
    let mut neo = SplatRenderer::new_neo(RendererConfig::default().with_tile_size(32));
    let mut baseline = SplatRenderer::new_baseline(RendererConfig::default().with_tile_size(32));

    println!("\nframe |  sorting traffic (KB)   | incoming | image PSNR");
    println!("      |      neo     baseline  |          | neo vs baseline");
    println!("------+-------------------------+----------+----------------");
    for i in 0..8 {
        let cam = sampler.frame(i);
        let fn_ = neo.render_frame(&cloud, &cam);
        let fb = baseline.render_frame(&cloud, &cam);
        let kb = |r: &neo_core::FrameResult| r.stats.traffic.stage_total(Stage::Sorting) / 1024;
        let p = psnr(
            fb.image.as_ref().expect("image"),
            fn_.image.as_ref().expect("image"),
        );
        println!(
            "  {i:>3} | {:>8} KB {:>8} KB | {:>8} | {:.1} dB",
            kb(&fn_),
            kb(&fb),
            fn_.incoming,
            p.min(99.9),
        );
    }

    // 3. Save the last Neo frame so you can look at it.
    let cam = sampler.frame(8);
    let frame = neo.render_frame(&cloud, &cam);
    let ppm = frame.image.expect("image").to_ppm();
    let path = std::env::temp_dir().join("neo_quickstart.ppm");
    std::fs::write(&path, ppm).expect("write ppm");
    println!("\nwrote {}", path.display());
    println!(
        "After the first frame, Neo reuses each tile's Gaussian table: sorting\n\
         traffic collapses while the rendered image stays equivalent."
    );
}
