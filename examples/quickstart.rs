//! Quickstart: render a few frames of a benchmark scene with Neo's
//! reuse-and-update renderer and compare against the per-frame-resort
//! baseline, using the `RenderEngine`/`RenderSession` front door.
//!
//! Run: `cargo run --release --example quickstart`

use neo_core::{NeoError, RenderEngine, RendererConfig, StrategyKind};
use neo_metrics::psnr;
use neo_pipeline::Stage;
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};

fn main() -> Result<(), NeoError> {
    // 1. Build a (reduced-size) benchmark scene — "Family" from the
    //    paper's Tanks & Temples set — and its 30 FPS capture trajectory.
    let scene = ScenePreset::Family;
    let cloud = scene.build_scaled(0.005); // ~7k Gaussians for a quick demo
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(320, 180));
    println!("scene: {} ({} Gaussians)", scene.name(), cloud.len());

    // 2. Build one engine per strategy. Both share the same scene Arc;
    //    construction is fallible — bad configs are errors, not panics.
    let config = RendererConfig::default().with_tile_size(32);
    let neo_engine = RenderEngine::builder()
        .scene(cloud)
        .config(config.clone())
        .strategy(StrategyKind::ReuseUpdate)
        .build()?;
    let baseline_engine = RenderEngine::builder()
        .scene(std::sync::Arc::clone(neo_engine.scene()))
        .config(config)
        .strategy(StrategyKind::FullResort)
        .build()?;
    let mut neo = neo_engine.session();
    let mut baseline = baseline_engine.session();

    println!("\nframe |  sorting traffic (KB)   | incoming | image PSNR");
    println!("      |      neo     baseline  |          | neo vs baseline");
    println!("------+-------------------------+----------+----------------");
    for i in 0..8 {
        let cam = sampler.frame(i);
        let fn_ = neo.render_frame(&cam)?;
        let fb = baseline.render_frame(&cam)?;
        let kb = |r: &neo_core::FrameResult| r.stats.traffic.stage_total(Stage::Sorting) / 1024;
        let p = psnr(
            fb.image.as_ref().expect("image"),
            fn_.image.as_ref().expect("image"),
        );
        println!(
            "  {i:>3} | {:>8} KB {:>8} KB | {:>8} | {:.1} dB",
            kb(&fn_),
            kb(&fb),
            fn_.incoming,
            p.min(99.9),
        );
    }

    // 3. Save the last Neo frame so you can look at it.
    let cam = sampler.frame(8);
    let frame = neo.render_frame(&cam)?;
    println!(
        "\nrasterizer work on the last frame: {} blend ops from {} pixel visits\n\
         (exact-clipped row intervals, on by default — the legacy loop walks\n\
         every tile pixel per splat; `fig_raster` measures the gap)",
        frame.stats.blend_ops, frame.stats.pixel_visits
    );
    let ppm = frame.image.expect("image").to_ppm();
    let path = std::env::temp_dir().join("neo_quickstart.ppm");
    std::fs::write(&path, ppm).expect("write ppm");
    println!("\nwrote {}", path.display());
    println!(
        "After the first frame, Neo reuses each tile's Gaussian table: sorting\n\
         traffic collapses while the rendered image stays equivalent."
    );
    Ok(())
}
