//! VR-headset latency budget: can each device render *two* QHD eyes
//! within a 90 Hz (11.1 ms) budget? This is the paper's motivating
//! scenario — per-eye high resolution at headset refresh rates.
//!
//! Run: `cargo run --release --example vr_headset_budget`

use neo_scene::{presets::ScenePreset, Resolution};
use neo_sim::devices::{Device, GsCore, NeoDevice, OrinAgx};
use neo_workloads::capture::{capture_workload, steady_state_mean, CaptureConfig};

fn main() {
    let budget_ms = 1000.0 / 90.0; // one 90 Hz refresh
    println!("VR budget check: 2× QHD eyes @ 90 Hz → {budget_ms:.1} ms per frame pair\n");

    let scene = ScenePreset::Playground;
    let w = steady_state_mean(&capture_workload(&CaptureConfig {
        scene,
        resolution: Resolution::Qhd,
        frames: 20,
        scale: 0.01,
        speed: 1.0,
        ..Default::default()
    }));

    let orin = OrinAgx::new();
    let gscore = GsCore::scaled_16();
    let neo = NeoDevice::paper_default();
    println!(
        "scene: {} | per-eye workload: {} tile assignments\n",
        scene.name(),
        w.duplicates
    );
    println!(
        "{:<10} {:>12} {:>14} {:>10}",
        "device", "per-eye ms", "both eyes ms", "verdict"
    );
    for dev in [&orin as &dyn Device, &gscore, &neo] {
        let t = dev.simulate_frame(&w);
        let per_eye = t.latency_ms();
        let both = per_eye * 2.0;
        let verdict = if both <= budget_ms {
            "90 Hz"
        } else if both <= 2.0 * budget_ms {
            "45 Hz"
        } else if both <= 3.0 * budget_ms {
            "30 Hz"
        } else {
            "slideshow"
        };
        println!(
            "{:<10} {:>12.2} {:>14.2} {:>10}",
            dev.name(),
            per_eye,
            both,
            verdict
        );
    }
    println!(
        "\nNeo turns a slideshow into a playable frame rate by removing the\n\
         sorting bottleneck (on the paper's densest scene; lighter scenes reach\n\
         45–90 Hz) — try `cargo run -p neo-bench --bin fig15_end_to_end`."
    );
}
