//! VR-headset latency budget: can each device render *two* QHD eyes
//! within a 90 Hz (11.1 ms) budget? This is the paper's motivating
//! scenario — per-eye high resolution at headset refresh rates.
//!
//! The budget arithmetic lives in `neo_serve::FrameBudget`, and each
//! device's verdict is cross-checked by actually *scheduling* a 90 Hz
//! session through the `neo-serve` virtual clock with the device's
//! simulated frame time as the injected cost: the printed miss rate must
//! agree with the simple `both_eyes <= budget` comparison.
//!
//! Run: `cargo run --release --example vr_headset_budget`

use neo_core::{RenderEngine, RendererConfig};
use neo_scene::{presets::ScenePreset, Resolution};
use neo_serve::{FixedCost, FrameBudget, RoundRobin, ServeConfig, ServeDriver, SessionSpec};
use neo_sim::devices::{Device, GsCore, NeoDevice, OrinAgx};
use neo_workloads::capture::{capture_workload, steady_state_mean, CaptureConfig};

/// Schedule `frames` frames of one 90 Hz session whose every frame costs
/// `cost_us` virtual microseconds; return the deadline miss rate.
fn serve_miss_rate(driver: &ServeDriver<'_>, budget: FrameBudget, cost_us: u64) -> f64 {
    let spec = SessionSpec {
        id: neo_core::SessionId(0),
        arrival_us: 0,
        frames: 30,
        budget,
        width: 96,
        height: 54,
        start_frame: 0,
        speed: 1.0,
    };
    let report = driver
        .run_virtual(&[spec], &mut RoundRobin::new(), &FixedCost(cost_us))
        .expect("valid single-session workload");
    report.missed_deadlines() as f64 / report.frames_served() as f64
}

fn main() {
    let budget = FrameBudget::from_refresh_hz(90.0);
    let budget_ms = budget.frame_ms();
    println!("VR budget check: 2× QHD eyes @ 90 Hz → {budget_ms:.1} ms per frame pair\n");

    let scene = ScenePreset::Playground;
    let w = steady_state_mean(&capture_workload(&CaptureConfig {
        scene,
        resolution: Resolution::Qhd,
        frames: 20,
        scale: 0.01,
        speed: 1.0,
        ..Default::default()
    }));

    // A tiny engine backs the serve simulation: the cost model is fixed
    // per device, so the rendered frames only drive the schedule shape.
    let engine = RenderEngine::builder()
        .scene(ScenePreset::Playground.build_scaled(0.002))
        .config(RendererConfig::default().with_tile_size(32).without_image())
        .build()
        .expect("valid engine");
    let driver = ServeDriver::new(
        &engine,
        ScenePreset::Playground.trajectory(),
        ServeConfig {
            batch_overhead_us: 0,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");

    let orin = OrinAgx::new();
    let gscore = GsCore::scaled_16();
    let neo = NeoDevice::paper_default();
    println!(
        "scene: {} | per-eye workload: {} tile assignments\n",
        scene.name(),
        w.duplicates
    );
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10}",
        "device", "per-eye ms", "both eyes ms", "miss rate", "verdict"
    );
    for dev in [&orin as &dyn Device, &gscore, &neo] {
        let t = dev.simulate_frame(&w);
        let per_eye = t.latency_ms();
        let both = per_eye * 2.0;
        let cost_us = (both * 1e3).round() as u64;
        let miss_rate = serve_miss_rate(&driver, budget, cost_us);
        // The scheduled miss rate must agree with the plain comparison:
        // a single 90 Hz session with a fixed per-frame cost misses no
        // deadlines iff the cost fits the budget.
        assert_eq!(
            miss_rate == 0.0,
            cost_us <= budget.deadline_us,
            "serve simulation disagrees with the budget comparison for {}",
            dev.name()
        );
        let verdict = if both <= budget_ms {
            "90 Hz"
        } else if both <= 2.0 * budget_ms {
            "45 Hz"
        } else if both <= 3.0 * budget_ms {
            "30 Hz"
        } else {
            "slideshow"
        };
        println!(
            "{:<10} {:>12.2} {:>14.2} {:>9.0}% {:>10}",
            dev.name(),
            per_eye,
            both,
            miss_rate * 100.0,
            verdict
        );
    }
    println!(
        "\nNeo turns a slideshow into a playable frame rate by removing the\n\
         sorting bottleneck (on the paper's densest scene; lighter scenes reach\n\
         45–90 Hz) — try `cargo run -p neo-bench --bin fig15_end_to_end`.\n\
         Multi-session scheduling lives in `neo-serve`; see\n\
         `cargo run -p neo-bench --bin fig_serve`."
    );
}
