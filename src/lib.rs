//! Workspace umbrella crate for the Neo reproduction.
//!
//! Re-exports the member crates and a [`prelude`] so examples, tests and
//! downstream experiments can depend on one crate. See the individual
//! crates for full documentation:
//!
//! * [`neo_core`] — the `RenderEngine`/`RenderSession` front door over the
//!   reuse-and-update renderer (the paper's contribution)
//! * [`neo_sort`] — Dynamic Partial Sorting + the open `SortingStrategy`
//!   trait and its five built-in implementors
//! * [`neo_pipeline`] — the functional 3DGS pipeline
//! * [`neo_scene`] — benchmark scenes, cameras, trajectories
//! * [`neo_sim`] — device performance models and the area/power tables
//! * [`neo_metrics`] — PSNR / SSIM / LPIPS-proxy
//! * [`neo_workloads`] — workload capture and experiment presets

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use neo_core;
pub use neo_math;
pub use neo_metrics;
pub use neo_pipeline;
pub use neo_scene;
pub use neo_sim;
pub use neo_sort;
pub use neo_workloads;

/// The most common imports for writing an experiment.
pub mod prelude {
    #[allow(deprecated)]
    pub use neo_core::SplatRenderer;
    pub use neo_core::{
        FrameResult, FrameStream, NeoError, NeoResult, Parallelism, RenderEngine, RenderSession,
        RendererConfig, ShardPlan, SortingStrategy, StrategyKind, TemporalCacheStats,
        WarmStartConfig, WarmStartMode,
    };
    pub use neo_metrics::{lpips_proxy, psnr, ssim};
    pub use neo_pipeline::{render_reference, Image, RenderConfig, Stage};
    pub use neo_scene::{presets::ScenePreset, Camera, FrameSampler, GaussianCloud, Resolution};
    pub use neo_sim::devices::{Device, GsCore, NeoDevice, OrinAgx};
    pub use neo_sim::{dram::DramModel, WorkloadFrame};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let cloud = GaussianCloud::new();
        assert!(cloud.is_empty());
        let neo = NeoDevice::paper_default();
        assert_eq!(neo.name(), "Neo");
    }
}
