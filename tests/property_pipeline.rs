//! Property-based tests on the functional pipeline: tiling, binning and
//! projection invariants for arbitrary splats and cameras, plus the
//! byte-identity contract of the exact-clipped rasterization fast path.

use neo_math::{Vec2, Vec3};
use neo_pipeline::{
    bin_to_tiles, rasterize_tile, subtile_bitmap, Image, ProjectedGaussian, RenderConfig, TileGrid,
};
use neo_scene::{Camera, Gaussian, Resolution};
use proptest::prelude::*;

fn arb_splat() -> impl Strategy<Value = ProjectedGaussian> {
    (
        0u32..1000,
        -200.0f32..1200.0,
        -200.0f32..900.0,
        0.5f32..200.0,
        0.1f32..100.0,
    )
        .prop_map(|(id, x, y, radius, depth)| ProjectedGaussian {
            id,
            mean2d: Vec2::new(x, y),
            depth,
            conic: (1.0, 0.0, 1.0),
            radius,
            color: Vec3::ONE,
            opacity: 0.5,
        })
}

/// A splat with a well-formed (positive-definite, anisotropic) conic
/// derived from a random 2D covariance — the realistic population for
/// the fast-path parity check — with occasional degenerate poisoning
/// (NaN opacity / NaN conic) to pin the skip-guard parity too.
fn arb_blendable_splat() -> impl Strategy<Value = ProjectedGaussian> {
    (
        -60.0f32..220.0, // mean x (straddles the 150x100 image's borders)
        -60.0f32..160.0, // mean y
        0.3f32..400.0,   // cov xx (σ up to 20 px)
        0.3f32..400.0,   // cov yy
        -0.95f32..0.95,  // correlation
        0.0f32..1.2,     // opacity (past the 0.99 clamp)
        0.1f32..100.0,   // depth
        0.0f32..300.0,   // binning radius: zero to image-dwarfing
        0u8..24,         // degeneracy selector (0/1 poison the splat)
    )
        .prop_map(
            |(x, y, sxx, syy, rho, opacity, depth, radius, degenerate)| {
                let sxy = rho * (sxx * syy).sqrt();
                let det = sxx * syy - sxy * sxy;
                let mut conic = (syy / det, -sxy / det, sxx / det);
                let mut opacity = opacity;
                match degenerate {
                    0 => opacity = f32::NAN,
                    1 => conic.0 = f32::NAN,
                    _ => {}
                }
                ProjectedGaussian {
                    id: 0,
                    mean2d: Vec2::new(x, y),
                    depth,
                    conic,
                    radius,
                    color: Vec3::new(0.8, 0.4, 0.2),
                    opacity,
                }
            },
        )
}

proptest! {
    /// The exact-clipped row-interval fast path is byte-identical to the
    /// legacy every-pixel loop: same pixels, same counters (pixel_visits
    /// excepted, and never more of them), over random splat mixes —
    /// splats straddling tile borders, subtiling on and off, zero and
    /// huge radii, cutoff-grazing opacities, and non-finite poison.
    #[test]
    fn raster_fast_path_is_byte_identical_to_legacy(
        mut splats in prop::collection::vec(arb_blendable_splat(), 0..30),
        subtiling in any::<bool>(),
    ) {
        for (i, s) in splats.iter_mut().enumerate() {
            s.id = i as u32;
        }
        splats.sort_by(|a, b| a.depth.total_cmp(&b.depth));
        let ordered: Vec<&ProjectedGaussian> = splats.iter().collect();
        // 150x100 at 32-px tiles: interior tiles plus clipped border
        // tiles (22 and 4 px wide), so spans clamp against real edges.
        let grid = TileGrid::new(150, 100, 32);
        let fast_cfg = RenderConfig {
            tile_size: 32,
            subtiling,
            ..Default::default()
        };
        let legacy_cfg = RenderConfig {
            raster_fast_path: false,
            ..fast_cfg.clone()
        };
        let mut fast_img = Image::new(150, 100, Vec3::ZERO);
        let mut legacy_img = Image::new(150, 100, Vec3::ZERO);
        for tile in 0..grid.tile_count() {
            let fast = rasterize_tile(&mut fast_img, &grid, tile, &ordered, &fast_cfg);
            let legacy = rasterize_tile(&mut legacy_img, &grid, tile, &ordered, &legacy_cfg);
            prop_assert_eq!(fast.blend_ops, legacy.blend_ops, "tile {}", tile);
            prop_assert_eq!(fast.saturated_pixels, legacy.saturated_pixels, "tile {}", tile);
            prop_assert_eq!(fast.zero_coverage, legacy.zero_coverage, "tile {}", tile);
            prop_assert!(
                fast.pixel_visits <= legacy.pixel_visits,
                "tile {}: fast path visited more pixels ({} > {})",
                tile, fast.pixel_visits, legacy.pixel_visits
            );
        }
        prop_assert_eq!(&fast_img, &legacy_img);
    }

    #[test]
    fn binning_covers_every_overlapped_tile(mut splats in prop::collection::vec(arb_splat(), 0..60)) {
        // IDs must be unique to attribute tile hits per splat.
        for (i, s) in splats.iter_mut().enumerate() {
            s.id = i as u32;
        }
        let grid = TileGrid::new(1024, 768, 64);
        let binned = bin_to_tiles(&grid, &splats);
        // Each splat appears in exactly the tiles its bounding square
        // overlaps (conservative disc-to-rect binning).
        for s in &splats {
            let hits: usize = (0..grid.tile_count())
                .map(|t| binned.tile(t).iter().filter(|(id, _)| *id == s.id).count())
                .sum();
            match grid.tiles_for_splat(s.mean2d, s.radius) {
                Some((tx0, ty0, tx1, ty1)) => {
                    let expect = ((tx1 - tx0 + 1) * (ty1 - ty0 + 1)) as usize;
                    prop_assert_eq!(hits, expect);
                }
                None => prop_assert_eq!(hits, 0),
            }
        }
    }

    #[test]
    fn tile_ranges_are_within_grid(x in -500.0f32..3000.0, y in -500.0f32..2000.0, r in 0.1f32..500.0) {
        let grid = TileGrid::new(2560, 1440, 64);
        if let Some((tx0, ty0, tx1, ty1)) = grid.tiles_for_splat(Vec2::new(x, y), r) {
            prop_assert!(tx0 <= tx1 && ty0 <= ty1);
            prop_assert!(tx1 < grid.tiles_x());
            prop_assert!(ty1 < grid.tiles_y());
        }
    }

    #[test]
    fn subtile_bitmap_is_subset_of_big_radius(
        x in 0.0f32..256.0,
        y in 0.0f32..256.0,
        r in 0.5f32..40.0,
    ) {
        let grid = TileGrid::new(256, 256, 64);
        let small = subtile_bitmap(&grid, 1, 1, Vec2::new(x, y), r);
        let big = subtile_bitmap(&grid, 1, 1, Vec2::new(x, y), r * 2.0);
        // Monotonicity: growing the radius can only set more bits.
        prop_assert_eq!(small & big, small);
    }

    #[test]
    fn projection_depth_matches_camera_distance_along_axis(
        gx in -3.0f32..3.0,
        gy in -2.0f32..2.0,
        gz in -3.0f32..3.0,
    ) {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -8.0),
            Vec3::ZERO,
            Vec3::Y,
            1.0,
            Resolution::Custom(640, 360),
        );
        let g = Gaussian::isotropic(Vec3::new(gx, gy, gz), 0.05, 0.9, Vec3::ONE);
        if let Some(p) = neo_pipeline::project_gaussian(&cam, 0, &g) {
            let cam_space = cam.world_to_camera(g.mean);
            prop_assert!((p.depth - cam_space.z).abs() < 1e-3);
            prop_assert!(p.depth >= cam.near);
            prop_assert!(p.radius >= 1.0);
            // Falloff is maximal at the splat center.
            let center = p.falloff(p.mean2d);
            let off = p.falloff(p.mean2d + Vec2::new(3.0, 3.0));
            prop_assert!(center >= off);
        }
    }

    #[test]
    fn camera_projection_roundtrip_is_stable(
        px in 10.0f32..630.0,
        py in 10.0f32..350.0,
        depth in 1.0f32..50.0,
    ) {
        // Unproject a pixel to a camera-space point, then reproject.
        let cam = Camera::look_at(
            Vec3::new(1.0, 2.0, -6.0),
            Vec3::ZERO,
            Vec3::Y,
            1.1,
            Resolution::Custom(640, 360),
        );
        let f = cam.focal();
        let cam_space = Vec3::new(
            (px - 320.0) * depth / f.x,
            (py - 180.0) * depth / f.y,
            depth,
        );
        let back = cam.camera_to_pixel(cam_space).unwrap();
        prop_assert!((back.x - px).abs() < 0.01);
        prop_assert!((back.y - py).abs() < 0.01);
    }
}
