//! Property-based tests on the functional pipeline: tiling, binning and
//! projection invariants for arbitrary splats and cameras.

use neo_math::{Vec2, Vec3};
use neo_pipeline::{bin_to_tiles, subtile_bitmap, ProjectedGaussian, TileGrid};
use neo_scene::{Camera, Gaussian, Resolution};
use proptest::prelude::*;

fn arb_splat() -> impl Strategy<Value = ProjectedGaussian> {
    (
        0u32..1000,
        -200.0f32..1200.0,
        -200.0f32..900.0,
        0.5f32..200.0,
        0.1f32..100.0,
    )
        .prop_map(|(id, x, y, radius, depth)| ProjectedGaussian {
            id,
            mean2d: Vec2::new(x, y),
            depth,
            conic: (1.0, 0.0, 1.0),
            radius,
            color: Vec3::ONE,
            opacity: 0.5,
        })
}

proptest! {
    #[test]
    fn binning_covers_every_overlapped_tile(mut splats in prop::collection::vec(arb_splat(), 0..60)) {
        // IDs must be unique to attribute tile hits per splat.
        for (i, s) in splats.iter_mut().enumerate() {
            s.id = i as u32;
        }
        let grid = TileGrid::new(1024, 768, 64);
        let binned = bin_to_tiles(&grid, &splats);
        // Each splat appears in exactly the tiles its bounding square
        // overlaps (conservative disc-to-rect binning).
        for s in &splats {
            let hits: usize = (0..grid.tile_count())
                .map(|t| binned.tile(t).iter().filter(|(id, _)| *id == s.id).count())
                .sum();
            match grid.tiles_for_splat(s.mean2d, s.radius) {
                Some((tx0, ty0, tx1, ty1)) => {
                    let expect = ((tx1 - tx0 + 1) * (ty1 - ty0 + 1)) as usize;
                    prop_assert_eq!(hits, expect);
                }
                None => prop_assert_eq!(hits, 0),
            }
        }
    }

    #[test]
    fn tile_ranges_are_within_grid(x in -500.0f32..3000.0, y in -500.0f32..2000.0, r in 0.1f32..500.0) {
        let grid = TileGrid::new(2560, 1440, 64);
        if let Some((tx0, ty0, tx1, ty1)) = grid.tiles_for_splat(Vec2::new(x, y), r) {
            prop_assert!(tx0 <= tx1 && ty0 <= ty1);
            prop_assert!(tx1 < grid.tiles_x());
            prop_assert!(ty1 < grid.tiles_y());
        }
    }

    #[test]
    fn subtile_bitmap_is_subset_of_big_radius(
        x in 0.0f32..256.0,
        y in 0.0f32..256.0,
        r in 0.5f32..40.0,
    ) {
        let grid = TileGrid::new(256, 256, 64);
        let small = subtile_bitmap(&grid, 1, 1, Vec2::new(x, y), r);
        let big = subtile_bitmap(&grid, 1, 1, Vec2::new(x, y), r * 2.0);
        // Monotonicity: growing the radius can only set more bits.
        prop_assert_eq!(small & big, small);
    }

    #[test]
    fn projection_depth_matches_camera_distance_along_axis(
        gx in -3.0f32..3.0,
        gy in -2.0f32..2.0,
        gz in -3.0f32..3.0,
    ) {
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, -8.0),
            Vec3::ZERO,
            Vec3::Y,
            1.0,
            Resolution::Custom(640, 360),
        );
        let g = Gaussian::isotropic(Vec3::new(gx, gy, gz), 0.05, 0.9, Vec3::ONE);
        if let Some(p) = neo_pipeline::project_gaussian(&cam, 0, &g) {
            let cam_space = cam.world_to_camera(g.mean);
            prop_assert!((p.depth - cam_space.z).abs() < 1e-3);
            prop_assert!(p.depth >= cam.near);
            prop_assert!(p.radius >= 1.0);
            // Falloff is maximal at the splat center.
            let center = p.falloff(p.mean2d);
            let off = p.falloff(p.mean2d + Vec2::new(3.0, 3.0));
            prop_assert!(center >= off);
        }
    }

    #[test]
    fn camera_projection_roundtrip_is_stable(
        px in 10.0f32..630.0,
        py in 10.0f32..350.0,
        depth in 1.0f32..50.0,
    ) {
        // Unproject a pixel to a camera-space point, then reproject.
        let cam = Camera::look_at(
            Vec3::new(1.0, 2.0, -6.0),
            Vec3::ZERO,
            Vec3::Y,
            1.1,
            Resolution::Custom(640, 360),
        );
        let f = cam.focal();
        let cam_space = Vec3::new(
            (px - 320.0) * depth / f.x,
            (py - 180.0) * depth / f.y,
            depth,
        );
        let back = cam.camera_to_pixel(cam_space).unwrap();
        prop_assert!((back.x - px).abs() < 0.01);
        prop_assert!((back.y - py).abs() < 0.01);
    }
}
