//! Parity suite for the API redesign: for each of the five built-in
//! sorting strategies, a `RenderSession` driving trait objects through
//! the new `RenderEngine` front door must produce **byte-identical**
//! `FrameResult`s (image pixels, traffic ledgers, sort costs, per-tile
//! table stats) to the legacy `SplatRenderer` on a seeded Family scene.
//!
//! Everything in the pipeline is deterministic, so equality is exact —
//! `FrameResult` derives `PartialEq` and compares f32 pixels bitwise.

#![allow(deprecated)]

use neo_core::{RenderEngine, RendererConfig, SplatRenderer, StrategyKind};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use std::sync::Arc;

const FRAMES: usize = 6;

fn five_strategies() -> [StrategyKind; 5] {
    [
        StrategyKind::FullResort,
        StrategyKind::Hierarchical,
        StrategyKind::Periodic(4),
        StrategyKind::Background(2),
        StrategyKind::ReuseUpdate,
    ]
}

fn assert_parity(config: RendererConfig) {
    let scene = ScenePreset::Family;
    let cloud = Arc::new(scene.build_scaled(0.002));
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(160, 96));

    for kind in five_strategies() {
        let mut legacy = SplatRenderer::new(kind, config.clone());
        let engine = RenderEngine::builder()
            .scene(Arc::clone(&cloud))
            .config(config.clone())
            .strategy(kind)
            .build()
            .expect("valid config");
        let mut session = engine.session();

        for i in 0..FRAMES {
            let cam = sampler.frame(i);
            let old = legacy.render_frame(&cloud, &cam);
            let new = session.render_frame(&cam).expect("valid camera");
            assert_eq!(
                old, new,
                "strategy {kind:?} frame {i}: engine result diverged from legacy"
            );
        }
        assert_eq!(legacy.frames_rendered(), session.frames_rendered());
    }
}

#[test]
fn all_five_strategies_are_byte_identical_with_images() {
    assert_parity(RendererConfig::default().with_tile_size(32));
}

#[test]
fn all_five_strategies_are_byte_identical_in_workload_mode() {
    assert_parity(RendererConfig::default().with_tile_size(32).without_image());
}

#[test]
fn parity_survives_a_resolution_change_reset() {
    // Both paths must reset per-tile state identically when the grid
    // changes mid-sequence.
    let scene = ScenePreset::Family;
    let cloud = Arc::new(scene.build_scaled(0.002));
    let config = RendererConfig::default().with_tile_size(32);
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(160, 96));

    let mut legacy = SplatRenderer::new(StrategyKind::ReuseUpdate, config.clone());
    let engine = RenderEngine::builder()
        .scene(Arc::clone(&cloud))
        .config(config)
        .build()
        .expect("valid config");
    let mut session = engine.session();

    for i in 0..3 {
        let cam = sampler.frame(i);
        assert_eq!(
            legacy.render_frame(&cloud, &cam),
            session.render_frame(&cam).expect("valid camera")
        );
    }
    // Grid change: tables reset on both sides.
    let big = sampler
        .frame(3)
        .with_resolution(Resolution::Custom(320, 192));
    assert_eq!(
        legacy.render_frame(&cloud, &big),
        session.render_frame(&big).expect("valid camera")
    );
    // And both keep matching afterwards.
    let cam = sampler
        .frame(4)
        .with_resolution(Resolution::Custom(320, 192));
    assert_eq!(
        legacy.render_frame(&cloud, &cam),
        session.render_frame(&cam).expect("valid camera")
    );
}

#[test]
fn legacy_convenience_constructors_match_engine_strategies() {
    // new_neo/new_baseline are ReuseUpdate/FullResort in disguise.
    let scene = ScenePreset::Horse;
    let cloud = Arc::new(scene.build_scaled(0.002));
    let config = RendererConfig::default().with_tile_size(32);
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(128, 72));

    for (mut legacy, kind) in [
        (
            SplatRenderer::new_neo(config.clone()),
            StrategyKind::ReuseUpdate,
        ),
        (
            SplatRenderer::new_baseline(config.clone()),
            StrategyKind::FullResort,
        ),
    ] {
        let mut session = RenderEngine::builder()
            .scene(Arc::clone(&cloud))
            .config(config.clone())
            .strategy(kind)
            .build()
            .expect("valid config")
            .session();
        for i in 0..3 {
            let cam = sampler.frame(i);
            assert_eq!(
                legacy.render_frame(&cloud, &cam),
                session.render_frame(&cam).expect("valid camera")
            );
        }
    }
}
