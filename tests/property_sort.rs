//! Property-based tests on the sorting substrate: the invariants Neo's
//! hardware relies on must hold for arbitrary inputs.

use neo_sort::bitonic::bitonic_sort;
use neo_sort::dps::{chunk_ranges, dynamic_partial_sort, DpsConfig};
use neo_sort::hierarchical::{hierarchical_sort, HierarchicalConfig};
use neo_sort::merge::{chunk_sort, merge_filtering, merge_keeping};
use neo_sort::radix::radix_sort;
use neo_sort::strategies::{StrategyKind, TileSorter};
use neo_sort::{GaussianTable, TableEntry};
use proptest::prelude::*;

fn arb_entries(max_len: usize) -> impl Strategy<Value = Vec<TableEntry>> {
    prop::collection::vec(
        (0u32..10_000, -1000.0f32..1000.0, any::<bool>()),
        0..max_len,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(id, depth, valid)| TableEntry { id, depth, valid })
            .collect()
    })
}

/// Entries whose depths are drawn from the pathological corners of the
/// f32 space: ±NaN, ±inf, ±0.0, subnormals, and huge magnitudes. These
/// must sort identically (IEEE total order by `TableEntry::key`) through
/// every kernel in the crate.
fn arb_pathological_entries(max_len: usize) -> impl Strategy<Value = Vec<TableEntry>> {
    let depth = (0usize..10, -4.0f32..4.0).prop_map(|(pick, fallback)| match pick {
        0 => f32::NAN,
        1 => -f32::NAN,
        2 => f32::INFINITY,
        3 => f32::NEG_INFINITY,
        4 => 0.0,
        5 => -0.0,
        6 => f32::MIN_POSITIVE / 2.0, // subnormal
        7 => -1e38,
        8 => 1e38,
        _ => fallback,
    });
    prop::collection::vec((0u32..64, depth), 0..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(id, depth)| TableEntry::new(id, depth))
            .collect()
    })
}

fn is_sorted(v: &[TableEntry]) -> bool {
    v.windows(2).all(|w| w[0].key() <= w[1].key())
}

/// Key-plus-depth-bits view: equal iff the orderings agree bit-for-bit
/// (NaN payloads included — `PartialEq` on depth would treat them as
/// always-unequal).
fn key_bits(v: &[TableEntry]) -> Vec<(u32, u32, u32)> {
    v.iter()
        .map(|e| (e.key().0, e.id, e.depth.to_bits()))
        .collect()
}

proptest! {
    #[test]
    fn bitonic_sorts_any_input(mut entries in arb_entries(300)) {
        let mut expect: Vec<u32> = entries.iter().map(|e| e.id).collect();
        bitonic_sort(&mut entries);
        prop_assert!(is_sorted(&entries));
        // Multiset of IDs preserved.
        let mut got: Vec<u32> = entries.iter().map(|e| e.id).collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn merge_filtering_output_is_sorted_and_valid(
        mut a in arb_entries(120),
        mut b in arb_entries(120),
    ) {
        a.sort_by_key(TableEntry::key);
        b.sort_by_key(TableEntry::key);
        let (out, _) = merge_filtering(&a, &b);
        prop_assert!(is_sorted(&out));
        prop_assert!(out.iter().all(|e| e.valid));
        let expected = a.iter().chain(&b).filter(|e| e.valid).count();
        prop_assert_eq!(out.len(), expected);
    }

    #[test]
    fn merge_keeping_preserves_everything(
        mut a in arb_entries(120),
        mut b in arb_entries(120),
    ) {
        a.sort_by_key(TableEntry::key);
        b.sort_by_key(TableEntry::key);
        let (out, _) = merge_keeping(&a, &b);
        prop_assert!(is_sorted(&out));
        prop_assert_eq!(out.len(), a.len() + b.len());
    }

    #[test]
    fn chunk_sort_equals_full_sort_plus_filter(entries in arb_entries(300)) {
        let (out, _) = chunk_sort(&entries);
        let mut expect: Vec<TableEntry> =
            entries.iter().copied().filter(|e| e.valid).collect();
        expect.sort_by_key(TableEntry::key);
        let got_keys: Vec<_> = out.iter().map(TableEntry::key).collect();
        let want_keys: Vec<_> = expect.iter().map(TableEntry::key).collect();
        prop_assert_eq!(got_keys, want_keys);
    }

    #[test]
    fn chunk_ranges_partition_exactly(
        len in 0usize..5000,
        frame in 0u64..8,
        chunk in 2usize..600,
    ) {
        let ranges = chunk_ranges(len, frame, chunk);
        let covered: usize = ranges.iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(covered, len);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        for &(s, e) in &ranges {
            prop_assert!(e > s);
            prop_assert!(e - s <= chunk);
        }
    }

    #[test]
    fn dps_never_loses_entries_and_reduces_disorder(
        entries in arb_entries(600),
        frames in 1u64..6,
    ) {
        let mut table = GaussianTable::from_entries(entries.clone());
        let before_inversions = table.inversions();
        let cfg = DpsConfig { chunk_size: 64, passes: 1 };
        for f in 0..frames {
            dynamic_partial_sort(&mut table, f, &cfg);
        }
        prop_assert_eq!(table.len(), entries.len());
        prop_assert!(table.inversions() <= before_inversions,
            "DPS must never increase disorder");
    }

    #[test]
    fn dps_converges_for_bounded_displacement(n in 1usize..800) {
        // Sorted table with local perturbations ≤ 16 positions: must be
        // fully sorted after two alternating-parity passes (chunk 64).
        let mut depths: Vec<f32> = (0..n).map(|i| i as f32).collect();
        for i in (0..n.saturating_sub(16)).step_by(13) {
            depths.swap(i, i + 16);
        }
        let mut table = GaussianTable::from_entries(
            depths.into_iter().enumerate().map(|(i, d)| TableEntry::new(i as u32, d)),
        );
        let cfg = DpsConfig { chunk_size: 64, passes: 1 };
        dynamic_partial_sort(&mut table, 0, &cfg);
        dynamic_partial_sort(&mut table, 1, &cfg);
        prop_assert!(table.is_sorted());
    }

    #[test]
    fn all_kernels_agree_with_comparison_sort_on_pathological_depths(
        entries in arb_pathological_entries(200),
    ) {
        // The reference: the comparison sort by the documented total-order
        // key (what `GaussianTable::sort_full` and `sort_by_key` run).
        let mut expect = entries.clone();
        expect.sort_by_key(TableEntry::key);
        let want = key_bits(&expect);

        // GPU-model LSD radix sort (stable on the same composite key).
        let (radix, _) = radix_sort(&entries);
        prop_assert_eq!(key_bits(&radix), want.clone(), "radix diverged");

        // Bitonic network (pads with the reserved maximum key — the old
        // +inf padding lost NaN entries).
        let mut bitonic = entries.clone();
        bitonic_sort(&mut bitonic);
        prop_assert_eq!(key_bits(&bitonic), want.clone(), "bitonic diverged");

        // BSU+MSU chunk sort (all entries valid here, so no filtering).
        let (chunked, _) = chunk_sort(&entries);
        prop_assert_eq!(key_bits(&chunked), want.clone(), "chunk_sort diverged");

        // GSCore-style hierarchical sort.
        let (hier, _) = hierarchical_sort(&entries, &HierarchicalConfig::default());
        prop_assert_eq!(key_bits(&hier), want, "hierarchical diverged");
    }

    #[test]
    fn full_resort_and_hierarchical_strategies_agree_on_pathological_depths(
        entries in arb_pathological_entries(120),
    ) {
        // Strategy level: the two exact strategies must produce identical
        // blend orders even for NaN/infinite depths.
        let input: Vec<(u32, f32)> =
            entries.iter().map(|e| (e.id, e.depth)).collect();
        let mut full = TileSorter::new(StrategyKind::FullResort);
        let mut hier = TileSorter::new(StrategyKind::Hierarchical);
        let a = full.process_frame(&input);
        let b = hier.process_frame(&input);
        prop_assert_eq!(key_bits(&a.order), key_bits(&b.order));
    }

    #[test]
    fn reuse_update_membership_matches_input(
        ids in prop::collection::btree_set(0u32..500, 1..120),
    ) {
        // After two frames with the same membership, the table contains
        // exactly the input IDs (duplicates removed, stale pruned).
        let frame: Vec<(u32, f32)> =
            ids.iter().map(|&id| (id, id as f32 * 0.5)).collect();
        let mut sorter = TileSorter::new(StrategyKind::ReuseUpdate);
        sorter.process_frame(&frame);
        let out = sorter.process_frame(&frame);
        let mut got: Vec<u32> =
            out.order.iter().filter(|e| e.valid).map(|e| e.id).collect();
        got.sort_unstable();
        got.dedup();
        let want: Vec<u32> = ids.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}
