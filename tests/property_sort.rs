//! Property-based tests on the sorting substrate: the invariants Neo's
//! hardware relies on must hold for arbitrary inputs.

use neo_sort::bitonic::bitonic_sort;
use neo_sort::dps::{chunk_ranges, dynamic_partial_sort, DpsConfig};
use neo_sort::merge::{chunk_sort, merge_filtering, merge_keeping};
use neo_sort::strategies::{StrategyKind, TileSorter};
use neo_sort::{GaussianTable, TableEntry};
use proptest::prelude::*;

fn arb_entries(max_len: usize) -> impl Strategy<Value = Vec<TableEntry>> {
    prop::collection::vec(
        (0u32..10_000, -1000.0f32..1000.0, any::<bool>()),
        0..max_len,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(id, depth, valid)| TableEntry { id, depth, valid })
            .collect()
    })
}

fn is_sorted(v: &[TableEntry]) -> bool {
    v.windows(2).all(|w| w[0].key() <= w[1].key())
}

proptest! {
    #[test]
    fn bitonic_sorts_any_input(mut entries in arb_entries(300)) {
        let mut expect: Vec<u32> = entries.iter().map(|e| e.id).collect();
        bitonic_sort(&mut entries);
        prop_assert!(is_sorted(&entries));
        // Multiset of IDs preserved.
        let mut got: Vec<u32> = entries.iter().map(|e| e.id).collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn merge_filtering_output_is_sorted_and_valid(
        mut a in arb_entries(120),
        mut b in arb_entries(120),
    ) {
        a.sort_by_key(TableEntry::key);
        b.sort_by_key(TableEntry::key);
        let (out, _) = merge_filtering(&a, &b);
        prop_assert!(is_sorted(&out));
        prop_assert!(out.iter().all(|e| e.valid));
        let expected = a.iter().chain(&b).filter(|e| e.valid).count();
        prop_assert_eq!(out.len(), expected);
    }

    #[test]
    fn merge_keeping_preserves_everything(
        mut a in arb_entries(120),
        mut b in arb_entries(120),
    ) {
        a.sort_by_key(TableEntry::key);
        b.sort_by_key(TableEntry::key);
        let (out, _) = merge_keeping(&a, &b);
        prop_assert!(is_sorted(&out));
        prop_assert_eq!(out.len(), a.len() + b.len());
    }

    #[test]
    fn chunk_sort_equals_full_sort_plus_filter(entries in arb_entries(300)) {
        let (out, _) = chunk_sort(&entries);
        let mut expect: Vec<TableEntry> =
            entries.iter().copied().filter(|e| e.valid).collect();
        expect.sort_by_key(TableEntry::key);
        let got_keys: Vec<_> = out.iter().map(TableEntry::key).collect();
        let want_keys: Vec<_> = expect.iter().map(TableEntry::key).collect();
        prop_assert_eq!(got_keys, want_keys);
    }

    #[test]
    fn chunk_ranges_partition_exactly(
        len in 0usize..5000,
        frame in 0u64..8,
        chunk in 2usize..600,
    ) {
        let ranges = chunk_ranges(len, frame, chunk);
        let covered: usize = ranges.iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(covered, len);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        for &(s, e) in &ranges {
            prop_assert!(e > s);
            prop_assert!(e - s <= chunk);
        }
    }

    #[test]
    fn dps_never_loses_entries_and_reduces_disorder(
        entries in arb_entries(600),
        frames in 1u64..6,
    ) {
        let mut table = GaussianTable::from_entries(entries.clone());
        let before_inversions = table.inversions();
        let cfg = DpsConfig { chunk_size: 64, passes: 1 };
        for f in 0..frames {
            dynamic_partial_sort(&mut table, f, &cfg);
        }
        prop_assert_eq!(table.len(), entries.len());
        prop_assert!(table.inversions() <= before_inversions,
            "DPS must never increase disorder");
    }

    #[test]
    fn dps_converges_for_bounded_displacement(n in 1usize..800) {
        // Sorted table with local perturbations ≤ 16 positions: must be
        // fully sorted after two alternating-parity passes (chunk 64).
        let mut depths: Vec<f32> = (0..n).map(|i| i as f32).collect();
        for i in (0..n.saturating_sub(16)).step_by(13) {
            depths.swap(i, i + 16);
        }
        let mut table = GaussianTable::from_entries(
            depths.into_iter().enumerate().map(|(i, d)| TableEntry::new(i as u32, d)),
        );
        let cfg = DpsConfig { chunk_size: 64, passes: 1 };
        dynamic_partial_sort(&mut table, 0, &cfg);
        dynamic_partial_sort(&mut table, 1, &cfg);
        prop_assert!(table.is_sorted());
    }

    #[test]
    fn reuse_update_membership_matches_input(
        ids in prop::collection::btree_set(0u32..500, 1..120),
    ) {
        // After two frames with the same membership, the table contains
        // exactly the input IDs (duplicates removed, stale pruned).
        let frame: Vec<(u32, f32)> =
            ids.iter().map(|&id| (id, id as f32 * 0.5)).collect();
        let mut sorter = TileSorter::new(StrategyKind::ReuseUpdate);
        sorter.process_frame(&frame);
        let out = sorter.process_frame(&frame);
        let mut got: Vec<u32> =
            out.order.iter().filter(|e| e.valid).map(|e| e.id).collect();
        got.sort_unstable();
        got.dedup();
        let want: Vec<u32> = ids.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}
