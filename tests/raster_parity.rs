//! Byte-identity contract of the exact-clipped row-interval
//! rasterization fast path (`RendererConfig::raster_fast_path`, default
//! on): against the legacy every-pixel-per-splat blend loop, the fast
//! path must produce the same pixels and the same statistics — across
//! all five sorting strategies, subtiling on and off, and 1 or 4 worker
//! threads. The only quantity allowed to move is
//! `FrameStats::pixel_visits`, the work metric the fast path exists to
//! reduce (and it must only ever shrink).
//!
//! CI runs this suite in release mode too: the contract compares floats
//! byte-for-byte and must hold under the optimized float paths.

use neo_core::{FrameResult, RenderEngine, RendererConfig, ShardPlan, StrategyKind};
use neo_pipeline::{render_reference, RenderConfig};
use neo_scene::{presets::ScenePreset, FrameSampler, GaussianCloud, Resolution};
use proptest::prelude::*;
use std::sync::Arc;

const FRAMES: usize = 3;

fn all_strategies() -> [StrategyKind; 5] {
    [
        StrategyKind::FullResort,
        StrategyKind::Hierarchical,
        StrategyKind::Periodic(3),
        StrategyKind::Background(2),
        StrategyKind::ReuseUpdate,
    ]
}

fn sampler() -> FrameSampler {
    FrameSampler::new(
        ScenePreset::Family.trajectory(),
        30.0,
        Resolution::Custom(160, 96),
    )
}

/// Renders a short trajectory with the given strategy/config/plan.
fn render(
    scene: &Arc<GaussianCloud>,
    kind: StrategyKind,
    config: RendererConfig,
    plan: &ShardPlan,
) -> Vec<FrameResult> {
    let engine = RenderEngine::builder()
        .scene(Arc::clone(scene))
        .config(config)
        .strategy(kind)
        .build()
        .expect("test configuration is valid");
    let sampler = sampler();
    let mut session = engine.session();
    (0..FRAMES)
        .map(|i| {
            session
                .render_frame_with_plan(&sampler.frame(i), plan)
                .expect("trajectory camera is valid")
        })
        .collect()
}

/// Asserts two frame sequences are byte-identical except for
/// `pixel_visits`, and that the fast path's visits never exceed the
/// legacy loop's.
fn assert_identical_modulo_pixel_visits(fast: &[FrameResult], legacy: &[FrameResult], ctx: &str) {
    assert_eq!(fast.len(), legacy.len());
    for (i, (f, l)) in fast.iter().zip(legacy).enumerate() {
        assert!(
            f.stats.pixel_visits <= l.stats.pixel_visits,
            "{ctx}: frame {i} fast path visited more pixels ({} > {})",
            f.stats.pixel_visits,
            l.stats.pixel_visits
        );
        let mut f = f.clone();
        f.stats.pixel_visits = l.stats.pixel_visits;
        assert_eq!(&f, l, "{ctx}: frame {i} diverged beyond pixel_visits");
    }
}

#[test]
fn fast_path_matches_legacy_for_all_strategies_subtiling_and_threads() {
    let scene = Arc::new(ScenePreset::Family.build_scaled(0.002));
    for kind in all_strategies() {
        for subtiling in [true, false] {
            for threads in [1usize, 4] {
                let mut fast_cfg = RendererConfig::default().with_tile_size(16);
                fast_cfg.subtiling = subtiling;
                let legacy_cfg = fast_cfg.clone().without_raster_fast_path();
                let plan = ShardPlan::balanced(threads);
                let fast = render(&scene, kind, fast_cfg, &plan);
                let legacy = render(&scene, kind, legacy_cfg, &plan);
                assert!(
                    fast.iter().all(|f| f.image.is_some()),
                    "suite must compare real images"
                );
                assert_identical_modulo_pixel_visits(
                    &fast,
                    &legacy,
                    &format!("{kind:?} subtiling={subtiling} threads={threads}"),
                );
                // The clip must actually bite on a real scene, not just
                // tie: this is the quantity fig_raster measures.
                let fv: u64 = fast.iter().map(|f| f.stats.pixel_visits).sum();
                let lv: u64 = legacy.iter().map(|f| f.stats.pixel_visits).sum();
                assert!(
                    fv < lv,
                    "{kind:?}: fast path did not reduce pixel visits ({fv} vs {lv})"
                );
            }
        }
    }
}

#[test]
fn fast_path_pixel_visits_are_shard_invariant() {
    // pixel_visits joins the determinism contract: it is a per-tile
    // integer sum, so shard geometry must not change it.
    let scene = Arc::new(ScenePreset::Family.build_scaled(0.002));
    let cfg = RendererConfig::default().with_tile_size(16);
    let serial = render(
        &scene,
        StrategyKind::ReuseUpdate,
        cfg.clone(),
        &ShardPlan::serial(),
    );
    let sharded = render(
        &scene,
        StrategyKind::ReuseUpdate,
        cfg,
        &ShardPlan::explicit(vec![3, 11, 40]),
    );
    assert_eq!(serial, sharded);
}

#[test]
fn reference_renderer_fast_path_matches_legacy() {
    let cloud = ScenePreset::Family.build_scaled(0.003);
    let cam = sampler().frame(1);
    for subtiling in [true, false] {
        let fast_cfg = RenderConfig {
            tile_size: 32,
            subtiling,
            ..Default::default()
        };
        let legacy_cfg = RenderConfig {
            raster_fast_path: false,
            ..fast_cfg.clone()
        };
        let (fast_img, mut fast) = render_reference(&cloud, &cam, &fast_cfg);
        let (legacy_img, legacy) = render_reference(&cloud, &cam, &legacy_cfg);
        assert_eq!(fast_img, legacy_img, "subtiling={subtiling}");
        assert!(fast.pixel_visits < legacy.pixel_visits);
        fast.pixel_visits = legacy.pixel_visits;
        assert_eq!(fast, legacy, "subtiling={subtiling}");
    }
}

/// Tiles spanning more than 64 subtiles degrade to a conservative
/// whole-tile bitmap instead of silently dropping splats whose coverage
/// lies beyond bit 63 (debug builds reject such grids at construction,
/// so this contract is release-only — which is also the profile CI runs
/// this suite under).
#[cfg(not(debug_assertions))]
#[test]
fn oversized_tiles_never_drop_covered_pixels() {
    use neo_math::{Vec2, Vec3};
    use neo_pipeline::{rasterize_tile, Image, ProjectedGaussian, TileGrid};

    // 16x16 subtiles per tile; the splat covers only the bottom-right of
    // the tile, so every subtile it touches has bit index ≥ 64.
    let grid = TileGrid::new(128, 128, 128);
    let splat = ProjectedGaussian {
        id: 0,
        mean2d: Vec2::new(110.0, 110.0),
        depth: 1.0,
        conic: (0.02, 0.0, 0.02),
        radius: 15.0,
        color: Vec3::new(0.9, 0.1, 0.2),
        opacity: 0.95,
    };
    for fast in [true, false] {
        let with_subtiling = RenderConfig {
            tile_size: 128,
            raster_fast_path: fast,
            ..Default::default()
        };
        let without = RenderConfig {
            subtiling: false,
            ..with_subtiling.clone()
        };
        let mut img_a = Image::new(128, 128, Vec3::ZERO);
        let a = rasterize_tile(&mut img_a, &grid, 0, &[&splat], &with_subtiling);
        let mut img_b = Image::new(128, 128, Vec3::ZERO);
        let b = rasterize_tile(&mut img_b, &grid, 0, &[&splat], &without);
        assert!(a.blend_ops > 0, "splat was wrongly dropped (fast={fast})");
        assert_eq!(a.blend_ops, b.blend_ops);
        assert_eq!(
            img_a, img_b,
            "subtiling skipped covered pixels (fast={fast})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random scene scale × strategy × tile size: engine output with the
    /// fast path is byte-identical (modulo pixel_visits) to the legacy
    /// loop, frame after stateful frame.
    #[test]
    fn random_configs_stay_byte_identical(
        kind_index in 0usize..5,
        tile_index in 0usize..3,
        scale in 0.001f64..0.004,
        threads in 1usize..5,
    ) {
        let kind = all_strategies()[kind_index];
        let tile_size = [16u32, 32, 64][tile_index];
        let scene = Arc::new(ScenePreset::Family.build_scaled(scale));
        let cfg = RendererConfig::default().with_tile_size(tile_size);
        let plan = ShardPlan::balanced(threads);
        let fast = render(&scene, kind, cfg.clone(), &plan);
        let legacy = render(&scene, kind, cfg.without_raster_fast_path(), &plan);
        for (i, (f, l)) in fast.iter().zip(&legacy).enumerate() {
            prop_assert!(f.stats.pixel_visits <= l.stats.pixel_visits);
            let mut f = f.clone();
            f.stats.pixel_visits = l.stats.pixel_visits;
            prop_assert_eq!(&f, l, "frame {} diverged ({:?})", i, kind);
        }
    }
}
