//! Device-model integration on *captured* (not synthetic) workloads: the
//! paper's headline orderings must hold end-to-end through scene
//! generation → functional pipeline → workload capture → device models.

use neo_scene::{presets::ScenePreset, Resolution};
use neo_sim::devices::{Device, GsCore, NeoDevice, OrinAgx};
use neo_workloads::capture::{capture_workload, CaptureConfig};

fn captured(scene: ScenePreset, res: Resolution) -> Vec<neo_sim::WorkloadFrame> {
    capture_workload(&CaptureConfig {
        scene,
        resolution: res,
        frames: 8,
        scale: 0.005,
        speed: 1.0,
        ..Default::default()
    })
}

#[test]
fn qhd_fps_ordering_on_captured_workload() {
    // Steady-state frames only: frame 0 is the cold start (everything is
    // "incoming"), which real sessions amortize away.
    let frames = &captured(ScenePreset::Family, Resolution::Qhd)[2..];
    let orin = OrinAgx::new().mean_fps(frames);
    let gscore = GsCore::scaled_16().mean_fps(frames);
    let neo = NeoDevice::paper_default().mean_fps(frames);
    assert!(
        neo > gscore && gscore > orin,
        "ordering must hold: neo {neo:.1} > gscore {gscore:.1} > orin {orin:.1}"
    );
    assert!(
        neo / gscore > 2.0,
        "Neo vs GSCore factor {:.2}",
        neo / gscore
    );

    // Real-time claim on a mid-weight scene (Family is the densest and
    // sits right at the 60 FPS boundary, as in Figure 15).
    let train = &captured(ScenePreset::Train, Resolution::Qhd)[2..];
    let neo_train = NeoDevice::paper_default().mean_fps(train);
    assert!(
        neo_train > 60.0,
        "Neo must be real-time at QHD, got {neo_train:.1}"
    );
}

#[test]
fn traffic_reduction_on_captured_workload() {
    let frames = captured(ScenePreset::Playground, Resolution::Qhd);
    let orin = OrinAgx::new().total_traffic(&frames) as f64;
    let gscore = GsCore::scaled_16().total_traffic(&frames) as f64;
    let neo = NeoDevice::paper_default().total_traffic(&frames) as f64;
    assert!(neo < gscore * 0.4, "vs GSCore: {:.2}", neo / gscore);
    assert!(neo < orin * 0.15, "vs Orin: {:.2}", neo / orin);
}

#[test]
fn resolution_collapse_is_monotone() {
    let scene = ScenePreset::Horse;
    let gscore = GsCore::paper_default();
    let fps: Vec<f64> = [Resolution::Hd, Resolution::Fhd, Resolution::Qhd]
        .iter()
        .map(|&r| gscore.mean_fps(&captured(scene, r)))
        .collect();
    assert!(fps[0] > fps[1] && fps[1] > fps[2], "{fps:?}");
}

#[test]
fn first_frame_is_costlier_than_steady_state_for_neo() {
    // Cold start sorts everything; steady state reuses.
    let frames = captured(ScenePreset::Train, Resolution::Fhd);
    let neo = NeoDevice::paper_default();
    let cold = neo.simulate_frame(&frames[0]);
    let warm = neo.simulate_frame(&frames[4]);
    assert!(cold.stages[1].bytes >= warm.stages[1].bytes);
}
