//! Concurrency suite for the API redesign: N `RenderSession`s sharing a
//! single `Arc<GaussianCloud>` render deterministically from
//! `std::thread::scope` and match a serial run frame-for-frame.
//!
//! Sessions carry all mutable state (per-tile tables), so concurrent
//! rendering needs no locks — the scene is immutable and shared.

use neo_core::{FrameResult, RenderEngine, RendererConfig, StrategyKind};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use std::sync::Arc;

const SESSIONS: usize = 4;
const FRAMES: usize = 5;

fn build_engine(kind: StrategyKind) -> RenderEngine {
    RenderEngine::builder()
        .scene(ScenePreset::Family.build_scaled(0.002))
        .config(RendererConfig::default().with_tile_size(32))
        .strategy(kind)
        .build()
        .expect("valid config")
}

fn sampler_for(speed: f32) -> FrameSampler {
    FrameSampler::new(
        ScenePreset::Family.trajectory(),
        30.0,
        Resolution::Custom(160, 96),
    )
    .with_speed(speed)
}

/// Renders `FRAMES` frames in a fresh session at the given camera speed.
fn render_serial(engine: &RenderEngine, speed: f32) -> Vec<FrameResult> {
    let sampler = sampler_for(speed);
    let mut session = engine.session();
    (0..FRAMES)
        .map(|i| session.render_frame(&sampler.frame(i)).expect("valid"))
        .collect()
}

#[test]
fn concurrent_sessions_match_serial_runs() {
    let engine = build_engine(StrategyKind::ReuseUpdate);

    // Each session renders the trajectory at a different camera speed, so
    // the sessions genuinely diverge (different churn, different tables).
    let speeds: Vec<f32> = (0..SESSIONS).map(|i| 1.0 + i as f32).collect();
    let serial: Vec<Vec<FrameResult>> = speeds.iter().map(|&s| render_serial(&engine, s)).collect();

    let parallel: Vec<Vec<FrameResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = speeds
            .iter()
            .map(|&speed| {
                let mut session = engine.session();
                scope.spawn(move || {
                    let sampler = sampler_for(speed);
                    (0..FRAMES)
                        .map(|i| session.render_frame(&sampler.frame(i)).expect("valid"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (s, (serial_frames, parallel_frames)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            serial_frames, parallel_frames,
            "session {s}: concurrent run diverged from serial run"
        );
    }
    // Sanity: different speeds produced different results (the test would
    // be vacuous if every session rendered identical frames).
    assert_ne!(serial[0], serial[1]);
}

#[test]
fn concurrent_sessions_share_one_scene_allocation() {
    let engine = build_engine(StrategyKind::ReuseUpdate);
    let base = Arc::strong_count(engine.scene());
    let sessions: Vec<_> = (0..SESSIONS).map(|_| engine.session()).collect();
    // With the default AoS storage format each session holds two handles
    // to the same allocation: the scene and the storage view of it.
    assert_eq!(Arc::strong_count(engine.scene()), base + 2 * SESSIONS);
    for s in &sessions {
        assert_eq!(Arc::as_ptr(s.scene()), Arc::as_ptr(engine.scene()));
    }
    drop(sessions);
    assert_eq!(Arc::strong_count(engine.scene()), base);
}

#[test]
fn concurrent_full_resort_sessions_are_deterministic_too() {
    // Stateless strategies must also be unaffected by thread interleaving.
    let engine = build_engine(StrategyKind::FullResort);
    let serial = render_serial(&engine, 1.0);
    let parallel: Vec<Vec<FrameResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|_| {
                let mut session = engine.session();
                scope.spawn(move || {
                    let sampler = sampler_for(1.0);
                    (0..FRAMES)
                        .map(|i| session.render_frame(&sampler.frame(i)).expect("valid"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for run in &parallel {
        assert_eq!(&serial, run, "identical inputs must render identically");
    }
}
