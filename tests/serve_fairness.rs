//! Fairness and isolation properties of the `neo-serve` layer.
//!
//! * **No starvation** — under 10:1 skewed demand, round-robin serves
//!   every admitted session within a bounded number of scheduler ticks
//!   (the active-set size), and every admitted session completes.
//! * **Admission accounting** — rejection statistics balance exactly:
//!   `offered == admitted + rejected`, and the rejected-id list matches
//!   the counter.
//! * **Temporal-cache isolation** — per-session warm-start statistics
//!   accumulate per session: a session interleaved with hundreds of
//!   ticks of other sessions' work reports byte-identical
//!   `TemporalCacheStats` to the same frame sequence rendered solo, even
//!   though all sessions share one scene `Arc`.

use neo_core::{RenderEngine, RendererConfig, SessionId, TemporalCacheStats, WarmStartConfig};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use neo_serve::{
    AdmissionConfig, FixedCost, FrameBudget, RoundRobin, ServeConfig, ServeDriver, SessionSpec,
};

fn engine(warm: bool) -> RenderEngine {
    let mut config = RendererConfig::default().with_tile_size(16).without_image();
    if warm {
        config = config.with_temporal_cache(WarmStartConfig::default());
    }
    RenderEngine::builder()
        .scene(ScenePreset::Family.build_scaled(0.002))
        .config(config)
        .build()
        .expect("test configuration is valid")
}

fn spec(id: u32, frames: u32) -> SessionSpec {
    SessionSpec {
        id: SessionId(id),
        arrival_us: 0,
        frames,
        // Frames release every 1 ms but each costs 5 ms, so every session
        // stays backlogged the whole run; deadlines are irrelevant here.
        budget: FrameBudget::from_period_us(1_000).with_deadline_us(1_000_000),
        width: 64,
        height: 36,
        start_frame: id * 3,
        speed: 1.0,
    }
}

#[test]
fn skewed_demand_starves_no_session() {
    // One heavy session demands 10x the frames of each of seven light
    // sessions; all are permanently backlogged.
    let mut specs = vec![spec(0, 40)];
    specs.extend((1..8).map(|i| spec(i, 4)));
    let eng = engine(false);
    let driver = ServeDriver::new(
        &eng,
        ScenePreset::Family.trajectory(),
        ServeConfig::default(),
    )
    .expect("valid config");
    let report = driver
        .run_virtual(&specs, &mut RoundRobin::new(), &FixedCost(5_000))
        .expect("serve run completes");

    assert_eq!(report.admission.admitted, 8);
    assert_eq!(report.sessions.len(), 8);
    let active_bound = report.admission.peak_active as u64;
    for s in &report.sessions {
        // Round-robin progress guarantee: while a session is backlogged,
        // at most one serve of every other active session separates its
        // consecutive serves.
        assert!(
            s.max_tick_gap() <= active_bound,
            "session {} waited {} ticks (active bound {})",
            s.id,
            s.max_tick_gap(),
            active_bound
        );
        assert_eq!(
            s.frames_completed, s.frames_requested,
            "session {} starved",
            s.id
        );
    }
    // The heavy session got its 10x demand served, not just the light ones.
    let heavy = &report.sessions[0];
    assert_eq!(heavy.id, SessionId(0));
    assert_eq!(heavy.frames_completed, 40);
}

#[test]
fn rejection_statistics_balance_exactly() {
    let specs: Vec<SessionSpec> = (0..12).map(|i| spec(i, 2)).collect();
    let eng = engine(false);
    let driver = ServeDriver::new(
        &eng,
        ScenePreset::Family.trajectory(),
        ServeConfig {
            admission: AdmissionConfig {
                max_active: 2,
                queue_bound: 3,
            },
            ..ServeConfig::default()
        },
    )
    .expect("valid config");
    let report = driver
        .run_virtual(&specs, &mut RoundRobin::new(), &FixedCost(1_000))
        .expect("serve run completes");

    // All 12 arrive at t=0 against capacity 2 + 3: exactly 5 admitted.
    assert_eq!(report.admission.offered, 12);
    assert_eq!(report.admission.admitted, 5);
    assert_eq!(report.admission.rejected, 7);
    assert_eq!(
        report.admission.offered,
        report.admission.admitted + report.admission.rejected
    );
    assert_eq!(report.rejected.len() as u64, report.admission.rejected);
    assert_eq!(report.sessions.len() as u64, report.admission.admitted);
    assert!(report.admission.peak_active <= 2);
    assert!(report.admission.peak_queue <= 3);
}

#[test]
fn temporal_cache_stats_stay_per_session() {
    // Serve three sessions with warm-start caching on one engine (shared
    // scene Arc). Each session's reported TemporalCacheStats must equal
    // the stats of the identical frame sequence rendered solo — cache
    // state and statistics never bleed across sessions.
    let eng = engine(true);
    let specs: Vec<SessionSpec> = (0..3).map(|i| spec(i, 6)).collect();
    let driver = ServeDriver::new(
        &eng,
        ScenePreset::Family.trajectory(),
        ServeConfig::default(),
    )
    .expect("valid config");
    let report = driver
        .run_virtual(&specs, &mut RoundRobin::new(), &FixedCost(2_000))
        .expect("serve run completes");
    assert_eq!(report.sessions.len(), 3);

    for s in &report.sessions {
        // Warm starts must actually have happened, or the isolation
        // comparison below would be vacuous.
        assert!(
            s.temporal.warm_tiles > 0,
            "session {} never warm-started",
            s.id
        );

        // Replay the same camera sequence on a fresh solo session of the
        // same engine and accumulate its per-frame stats.
        let original = specs
            .iter()
            .find(|spec| spec.id == s.id)
            .expect("report covers offered specs");
        let sampler = FrameSampler::new(
            ScenePreset::Family.trajectory(),
            30.0,
            Resolution::Custom(original.width, original.height),
        )
        .with_speed(original.speed);
        let mut solo = eng.session_with_id(original.id);
        let mut expected = TemporalCacheStats::default();
        for k in 0..original.frames {
            let cam = sampler.frame((original.start_frame + k) as usize);
            expected += solo.render_frame(&cam).expect("valid camera").temporal;
        }
        assert_eq!(
            s.temporal, expected,
            "session {} temporal stats diverged from its solo replay",
            s.id
        );
    }

    // The sessions start at different trajectory offsets, so their stats
    // are genuinely distinct — the equality above is not comparing three
    // copies of the same numbers.
    assert!(
        report
            .sessions
            .windows(2)
            .any(|w| w[0].temporal != w[1].temporal),
        "distinct sessions unexpectedly produced identical temporal stats"
    );
}
