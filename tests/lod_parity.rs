//! LOD parity suite — the safety net under the cluster-indexed scene.
//!
//! Three contracts are pinned here:
//!
//! 1. **Cull parity** (property): with proxy substitution disabled,
//!    [`neo_pipeline::project_clusters`] produces byte-identical output
//!    to the flat [`neo_pipeline::project_storage`] path for arbitrary
//!    clouds and cameras — cluster culling may only skip splats the
//!    per-splat frustum test would reject anyway.
//! 2. **LOD-off identity**: a [`RendererConfig`] without `with_lod` and
//!    one with a cull-only `LodConfig` render byte-identical images and
//!    agree on every statistic except the index's own bookkeeping
//!    (cluster counters and the feature-extraction traffic the cull
//!    saves), across all five sorting strategies and thread counts.
//! 3. **LOD-on determinism**: with proxy substitution active, frames
//!    are byte-identical across thread counts and shard plans.

use neo_core::{
    FrameResult, LodConfig, RenderEngine, RendererConfig, ShardPlan, StorageFormat, StrategyKind,
};
use neo_math::num::u64_from_usize;
use neo_math::sh::{basis_count, ShCoefficients, MAX_COEFFS};
use neo_math::{Quat, Vec3};
use neo_pipeline::{project_clusters, project_storage, Stage};
use neo_scene::synth::CityParams;
use neo_scene::{
    Camera, ClusterParams, ClusteredCloud, FrameSampler, Gaussian, GaussianCloud, Resolution,
};
use proptest::prelude::*;
use std::sync::Arc;

const ALL_STRATEGIES: [StrategyKind; 5] = [
    StrategyKind::FullResort,
    StrategyKind::Hierarchical,
    StrategyKind::Periodic(3),
    StrategyKind::Background(2),
    StrategyKind::ReuseUpdate,
];

/// Cull-only configuration: the cluster index runs (and culls), but no
/// proxy ever substitutes for members.
fn cull_only() -> LodConfig {
    LodConfig {
        proxy_footprint_px: 0.0,
        ..LodConfig::default()
    }
}

fn city_scene() -> (Arc<GaussianCloud>, FrameSampler) {
    let params = CityParams {
        splats_per_block: 150,
        ..CityParams::default().scaled(4.0)
    };
    let cloud = Arc::new(params.build());
    let sampler = FrameSampler::new(params.trajectory(), 30.0, Resolution::Custom(160, 96));
    (cloud, sampler)
}

fn render_frames(
    cloud: &Arc<GaussianCloud>,
    sampler: &FrameSampler,
    lod: Option<LodConfig>,
    kind: StrategyKind,
    threads: u32,
    frames: usize,
) -> Vec<FrameResult> {
    let mut config = RendererConfig::default()
        .with_tile_size(32)
        .with_threads(threads);
    if let Some(lod) = lod {
        config = config.with_lod(lod);
    }
    let engine = RenderEngine::builder()
        .scene(Arc::clone(cloud))
        .config(config)
        .strategy(kind)
        .build()
        .expect("valid test configuration");
    let mut session = engine.session();
    (0..frames)
        .map(|i| session.render_frame(&sampler.frame(i)).expect("camera"))
        .collect()
}

/// Everything the flat path and the cull-only LOD path must share: the
/// index is allowed to differ only in its own counters and in the
/// feature-extraction reads its culling avoided.
fn normalized(frame: &FrameResult, reference: &FrameResult) -> FrameResult {
    let mut f = frame.clone();
    f.stats.clusters_total = reference.stats.clusters_total;
    f.stats.clusters_culled = reference.stats.clusters_culled;
    f.stats.clusters_lod = reference.stats.clusters_lod;
    f.stats.lod_splats_saved = reference.stats.lod_splats_saved;
    f.stats.traffic = reference.stats.traffic;
    f
}

#[test]
fn cull_only_lod_matches_flat_path_across_strategies_and_threads() {
    let (cloud, sampler) = city_scene();
    for kind in ALL_STRATEGIES {
        for threads in [1, 4] {
            let flat = render_frames(&cloud, &sampler, None, kind, threads, 3);
            let lod = render_frames(&cloud, &sampler, Some(cull_only()), kind, threads, 3);
            for (i, (f, l)) in flat.iter().zip(&lod).enumerate() {
                assert_eq!(
                    *f,
                    normalized(l, f),
                    "cull-only LOD diverged: {kind:?}, {threads} thread(s), frame {i}"
                );
                // The index must actually have run — and saved traffic.
                assert!(l.stats.clusters_total > 0, "{kind:?}: index did not run");
                assert!(
                    l.stats.traffic.reads(Stage::FeatureExtraction)
                        <= f.stats.traffic.reads(Stage::FeatureExtraction),
                    "{kind:?}: culling must never add feature-extraction reads"
                );
            }
        }
    }
}

#[test]
fn lod_on_is_deterministic_across_threads_and_shard_plans() {
    let (cloud, sampler) = city_scene();
    let lod = LodConfig {
        cluster_size: 128,
        proxy_footprint_px: 96.0,
    };
    for kind in [StrategyKind::FullResort, StrategyKind::ReuseUpdate] {
        let serial = render_frames(&cloud, &sampler, Some(lod), kind, 1, 3);
        let threaded = render_frames(&cloud, &sampler, Some(lod), kind, 4, 3);
        assert_eq!(serial, threaded, "{kind:?}: LOD output depends on threads");
        // Proxy substitution must be exercised, or this test pins nothing.
        assert!(
            serial.iter().any(|f| f.stats.clusters_lod > 0),
            "{kind:?}: no cluster was ever proxied"
        );

        // Explicit shard plans through the same session must also agree.
        let engine = RenderEngine::builder()
            .scene(Arc::clone(&cloud))
            .config(RendererConfig::default().with_tile_size(32).with_lod(lod))
            .strategy(kind)
            .build()
            .expect("valid test configuration");
        let mut session = engine.session();
        for (i, reference) in serial.iter().enumerate() {
            let sharded = session
                .render_frame_with_plan(&sampler.frame(i), &ShardPlan::balanced(3))
                .expect("camera");
            assert_eq!(reference, &sharded, "{kind:?}: frame {i} shard divergence");
        }
    }
}

#[test]
fn lod_stats_account_for_every_splat() {
    let (cloud, sampler) = city_scene();
    let frames = render_frames(
        &cloud,
        &sampler,
        Some(LodConfig {
            cluster_size: 128,
            proxy_footprint_px: 96.0,
        }),
        StrategyKind::ReuseUpdate,
        1,
        3,
    );
    for f in &frames {
        // Visited + saved covers the whole cloud: every member is either
        // decoded for projection or skipped by a cull/proxy decision.
        let visited = f.stats.traffic.reads(Stage::FeatureExtraction)
            / u64_from_usize(StorageFormat::AosF32.record_bytes(cloud.max_sh_degree()));
        assert_eq!(
            visited + f.stats.lod_splats_saved,
            u64_from_usize(cloud.len()),
            "visited/saved accounting leak"
        );
    }
}

/// A valid Gaussian spanning the whole scene volume the cameras below
/// look at, including tiny and strongly anisotropic scales.
fn arb_gaussian() -> impl Strategy<Value = Gaussian> {
    (
        (-60.0f32..60.0, -60.0f32..60.0, -60.0f32..60.0),
        (0.001f32..4.0, 0.001f32..4.0, 0.001f32..4.0),
        (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
        0.0f32..=1.0,
        0usize..=2,
        prop::collection::vec(-2.0f32..2.0, 3 * MAX_COEFFS),
    )
        .prop_map(|(m, s, q, opacity, degree, sh_vals)| {
            let mut coeffs = [[0.0f32; MAX_COEFFS]; 3];
            for c in 0..3 {
                for i in 0..basis_count(degree) {
                    coeffs[c][i] = sh_vals[c * MAX_COEFFS + i];
                }
            }
            Gaussian {
                mean: Vec3::new(m.0, m.1, m.2),
                scale: Vec3::new(s.0, s.1, s.2),
                rotation: Quat::new(q.0.max(0.01), q.1, q.2, q.3).normalized(),
                opacity,
                sh: ShCoefficients { coeffs, degree },
            }
        })
}

/// An arbitrary camera orbiting the origin at varying radius and height,
/// so clusters land inside, outside, and straddling the frustum.
fn arb_camera() -> impl Strategy<Value = Camera> {
    (
        0.0f32..std::f32::consts::TAU,
        5.0f32..90.0,
        -20.0f32..40.0,
        0.4f32..1.4,
    )
        .prop_map(|(theta, radius, height, fov_y)| {
            let position = Vec3::new(radius * theta.cos(), height, radius * theta.sin());
            Camera::look_at(
                position,
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                fov_y,
                Resolution::Custom(128, 72),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cull parity as a property: for arbitrary clouds, cameras, and
    /// cluster sizes, the cull-only cluster path is byte-identical to
    /// flat per-splat projection.
    #[test]
    fn cluster_cull_parity_over_random_clouds_and_cameras(
        gaussians in prop::collection::vec(arb_gaussian(), 1..96),
        cam in arb_camera(),
        cluster_size in 1u32..64,
    ) {
        let cloud = GaussianCloud::from_gaussians(gaussians);
        let index = ClusteredCloud::build(&cloud, ClusterParams {
            target_cluster_size: cluster_size,
        });
        let flat = project_storage(&cam, &cloud);
        let clustered = project_clusters(&cam, &cloud, &index, &cull_only());
        prop_assert_eq!(&flat, &clustered.projected,
            "cull-only cluster projection diverged from the flat path");
        prop_assert_eq!(clustered.clusters_proxied, 0);
        prop_assert_eq!(
            clustered.splats_visited + clustered.splats_saved,
            u64_from_usize(cloud.len())
        );
    }
}
