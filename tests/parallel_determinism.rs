//! Determinism contract of the intra-frame parallel renderer: sharding a
//! frame's tiles across worker threads must produce `FrameResult`s
//! byte-identical to serial rendering — same pixels, same statistics,
//! same traffic ledger — for every sorting strategy, every thread count,
//! and every shard boundary choice.

use neo_core::{FrameResult, RenderEngine, RendererConfig, ShardPlan, StrategyKind};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use proptest::prelude::*;
use std::sync::Arc;

const FRAMES: usize = 4;

fn all_strategies() -> [StrategyKind; 5] {
    [
        StrategyKind::FullResort,
        StrategyKind::Hierarchical,
        StrategyKind::Periodic(3),
        StrategyKind::Background(2),
        StrategyKind::ReuseUpdate,
    ]
}

fn engine(kind: StrategyKind, config: RendererConfig) -> RenderEngine {
    RenderEngine::builder()
        .scene(ScenePreset::Family.build_scaled(0.002))
        .config(config)
        .strategy(kind)
        .build()
        .expect("test configuration is valid")
}

fn sampler() -> FrameSampler {
    // 160x96 at 16-px tiles → 10x6 = 60 tiles, enough for real sharding.
    FrameSampler::new(
        ScenePreset::Family.trajectory(),
        30.0,
        Resolution::Custom(160, 96),
    )
}

/// Renders `FRAMES` frames of the trajectory with an explicit shard plan
/// applied to every frame.
fn render_with_plan(kind: StrategyKind, plan: &ShardPlan) -> Vec<FrameResult> {
    let engine = engine(kind, RendererConfig::default().with_tile_size(16));
    let sampler = sampler();
    let mut session = engine.session();
    (0..FRAMES)
        .map(|i| {
            session
                .render_frame_with_plan(&sampler.frame(i), plan)
                .expect("trajectory camera is valid")
        })
        .collect()
}

#[test]
fn all_strategies_are_byte_identical_across_thread_counts() {
    for kind in all_strategies() {
        let serial = render_with_plan(kind, &ShardPlan::serial());
        assert!(
            serial.iter().all(|f| f.image.is_some()),
            "suite must compare real images"
        );
        for threads in [2usize, 4, 7] {
            let sharded = render_with_plan(kind, &ShardPlan::balanced(threads));
            assert_eq!(
                serial, sharded,
                "{kind:?} diverged from serial at {threads} threads"
            );
        }
    }
}

#[test]
fn config_level_thread_counts_match_serial() {
    // The user-facing knob: `with_threads(n)` is clamped to the machine's
    // available parallelism, but whatever it resolves to must not change
    // output.
    for kind in all_strategies() {
        let scene = Arc::new(ScenePreset::Family.build_scaled(0.002));
        let sampler = sampler();
        let mut sessions: Vec<_> = [0u32, 1, 2, 4, 7]
            .iter()
            .map(|&threads| {
                RenderEngine::builder()
                    .scene(Arc::clone(&scene))
                    .config(
                        RendererConfig::default()
                            .with_tile_size(16)
                            .with_threads(threads),
                    )
                    .strategy(kind)
                    .build()
                    .expect("test configuration is valid")
                    .session()
            })
            .collect();
        for i in 0..FRAMES {
            let cam = sampler.frame(i);
            let frames: Vec<_> = sessions
                .iter_mut()
                .map(|s| s.render_frame(&cam).expect("valid camera"))
                .collect();
            for f in &frames[1..] {
                assert_eq!(&frames[0], f, "{kind:?} diverged on frame {i}");
            }
        }
    }
}

#[test]
fn workload_statistics_mode_is_thread_invariant() {
    // without_image() skips rasterization; sorting state and the traffic
    // ledger must still be shard-invariant.
    for kind in [StrategyKind::ReuseUpdate, StrategyKind::FullResort] {
        let make = || {
            engine(
                kind,
                RendererConfig::default().with_tile_size(16).without_image(),
            )
        };
        let sampler = sampler();
        let mut serial = make().session();
        let mut sharded = make().session();
        for i in 0..FRAMES {
            let cam = sampler.frame(i);
            let a = serial.render_frame(&cam).unwrap();
            let b = sharded
                .render_frame_with_plan(&cam, &ShardPlan::balanced(4))
                .unwrap();
            assert_eq!(a, b, "{kind:?} stats diverged on frame {i}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary shard boundaries — unsorted, duplicated, out of range —
    /// never change the rendered output. This is the heart of the
    /// determinism contract: shard geometry is a pure scheduling choice.
    #[test]
    fn random_shard_boundaries_never_change_output(
        cuts in prop::collection::vec(0usize..80, 0..8),
        kind_index in 0usize..5,
    ) {
        let kind = all_strategies()[kind_index];
        let serial = render_with_plan(kind, &ShardPlan::serial());
        let sharded = render_with_plan(kind, &ShardPlan::explicit(cuts.clone()));
        prop_assert_eq!(
            serial,
            sharded,
            "{:?} diverged for cuts {:?}",
            kind,
            cuts
        );
    }
}
