//! End-to-end quality integration: Neo's reuse-and-update renderer must
//! be visually indistinguishable from the per-frame-resort baseline on
//! real scenes (the claim behind Table 2). Exercises the
//! `RenderEngine`/`RenderSession` front door throughout.

use neo_core::{NeoResult, RenderEngine, RendererConfig, StrategyKind};
use neo_metrics::{lpips_proxy, psnr};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use std::sync::Arc;

fn engine_for(
    cloud: &Arc<neo_scene::GaussianCloud>,
    kind: StrategyKind,
) -> NeoResult<RenderEngine> {
    RenderEngine::builder()
        .scene(Arc::clone(cloud))
        .config(RendererConfig::default().with_tile_size(32))
        .strategy(kind)
        .build()
}

fn run_scene(scene: ScenePreset) -> (f64, f64) {
    let cloud = Arc::new(scene.build_scaled(0.002));
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(192, 108));
    let mut neo = engine_for(&cloud, StrategyKind::ReuseUpdate)
        .expect("valid config")
        .session();
    let mut base = engine_for(&cloud, StrategyKind::FullResort)
        .expect("valid config")
        .session();

    let mut worst_psnr = f64::INFINITY;
    let mut worst_lpips: f64 = 0.0;
    for i in 0..8 {
        let cam = sampler.frame(i);
        let a = neo.render_frame(&cam).expect("valid camera").image.unwrap();
        let b = base
            .render_frame(&cam)
            .expect("valid camera")
            .image
            .unwrap();
        if i >= 2 {
            worst_psnr = worst_psnr.min(psnr(&b, &a));
            worst_lpips = worst_lpips.max(lpips_proxy(&b, &a));
        }
    }
    (worst_psnr, worst_lpips)
}

#[test]
fn neo_matches_baseline_on_family() {
    let (p, l) = run_scene(ScenePreset::Family);
    assert!(p > 33.0, "worst-case PSNR vs baseline {p:.1} dB");
    assert!(l < 0.05, "worst-case LPIPS proxy {l:.4}");
}

#[test]
fn neo_matches_baseline_on_train() {
    let (p, l) = run_scene(ScenePreset::Train);
    assert!(p > 33.0, "worst-case PSNR vs baseline {p:.1} dB");
    assert!(l < 0.05, "worst-case LPIPS proxy {l:.4}");
}

#[test]
fn periodic_sorting_quality_decays_between_refreshes() {
    // Figure 19(b): stale tables degrade quality; Neo does not.
    let scene = ScenePreset::Horse;
    let cloud = Arc::new(scene.build_scaled(0.002));
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(192, 108));
    let mut base = engine_for(&cloud, StrategyKind::FullResort)
        .expect("valid config")
        .session();
    let mut neo = engine_for(&cloud, StrategyKind::ReuseUpdate)
        .expect("valid config")
        .session();
    let mut periodic = engine_for(&cloud, StrategyKind::Periodic(60))
        .expect("valid config")
        .session();

    let mut neo_psnr = 0.0;
    let mut periodic_psnr = 0.0;
    let frames = 10;
    for i in 0..frames {
        let cam = sampler.frame(i);
        let gt = base
            .render_frame(&cam)
            .expect("valid camera")
            .image
            .unwrap();
        let a = neo.render_frame(&cam).expect("valid camera").image.unwrap();
        let p = periodic
            .render_frame(&cam)
            .expect("valid camera")
            .image
            .unwrap();
        if i >= 5 {
            neo_psnr += psnr(&gt, &a).min(60.0);
            periodic_psnr += psnr(&gt, &p).min(60.0);
        }
    }
    assert!(
        neo_psnr > periodic_psnr + 3.0,
        "neo {neo_psnr:.1} should beat stale periodic {periodic_psnr:.1} clearly"
    );
}
