//! Cross-format parity suite: the planar SoA backend must render
//! byte-identically to the default f32 AoS backend under every sorting
//! strategy and thread count, the compact quantized backend must clear
//! the pinned PSNR floor, and the NEOG codec must round-trip every
//! storage format across SH degrees 0–3 — including subnormal and
//! extreme coefficient values.

use neo_core::{RenderEngine, RendererConfig, StorageFormat, StrategyKind};
use neo_math::sh::{basis_count, ShCoefficients, MAX_COEFFS};
use neo_math::{Quat, Vec3};
use neo_metrics::psnr;
use neo_scene::{
    io, presets::ScenePreset, CompactCloud, FrameSampler, Gaussian, GaussianCloud, Resolution,
    SoaCloud,
};
use proptest::prelude::*;
use std::sync::Arc;

/// The quality bar the compact format must clear on a real render
/// (mirrors the `fig_formats` bench floor).
const COMPACT_PSNR_FLOOR_DB: f64 = 35.0;

fn test_scene() -> Arc<GaussianCloud> {
    Arc::new(ScenePreset::Family.build_scaled(0.002))
}

fn test_sampler() -> FrameSampler {
    FrameSampler::new(
        ScenePreset::Family.trajectory(),
        30.0,
        Resolution::Custom(160, 96),
    )
}

fn render_frames(
    cloud: &Arc<GaussianCloud>,
    format: StorageFormat,
    kind: StrategyKind,
    threads: u32,
    frames: usize,
) -> Vec<neo_core::FrameResult> {
    let engine = RenderEngine::builder()
        .scene(Arc::clone(cloud))
        .config(
            RendererConfig::default()
                .with_tile_size(32)
                .with_threads(threads)
                .with_storage(format),
        )
        .strategy(kind)
        .build()
        .expect("valid test configuration");
    let sampler = test_sampler();
    let mut session = engine.session();
    (0..frames)
        .map(|i| session.render_frame(&sampler.frame(i)).expect("camera"))
        .collect()
}

#[test]
fn soa_is_byte_identical_to_aos_across_strategies_and_threads() {
    let cloud = test_scene();
    let strategies = [
        StrategyKind::FullResort,
        StrategyKind::Hierarchical,
        StrategyKind::Periodic(3),
        StrategyKind::Background(2),
        StrategyKind::ReuseUpdate,
    ];
    for kind in strategies {
        for threads in [1, 4] {
            let aos = render_frames(&cloud, StorageFormat::AosF32, kind, threads, 3);
            let soa = render_frames(&cloud, StorageFormat::SoaF32, kind, threads, 3);
            assert_eq!(aos, soa, "SoA diverged: {kind:?}, {threads} thread(s)");
        }
    }
}

#[test]
fn compact_render_clears_the_psnr_floor() {
    let cloud = test_scene();
    let aos = render_frames(
        &cloud,
        StorageFormat::AosF32,
        StrategyKind::ReuseUpdate,
        1,
        3,
    );
    let compact = render_frames(
        &cloud,
        StorageFormat::Compact,
        StrategyKind::ReuseUpdate,
        1,
        3,
    );
    for (i, (a, c)) in aos.iter().zip(&compact).enumerate() {
        let q = psnr(
            a.image.as_ref().expect("image enabled"),
            c.image.as_ref().expect("image enabled"),
        );
        assert!(
            q >= COMPACT_PSNR_FLOOR_DB,
            "compact frame {i} at {q:.2} dB, below the {COMPACT_PSNR_FLOOR_DB} dB floor"
        );
    }
}

/// A Gaussian with full-range SH coefficients at an arbitrary degree,
/// optionally seeded with subnormal and extreme (f16-overflowing) values.
fn arb_gaussian_with_degree() -> impl Strategy<Value = Gaussian> {
    (
        (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0),
        (0.001f32..5.0, 0.001f32..5.0, 0.001f32..5.0),
        (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
        0.0f32..=1.0,
        0usize..=3,
        prop::collection::vec(-4.0f32..4.0, 3 * MAX_COEFFS),
        // Index selecting a coefficient to overwrite with a special
        // value, and which special value to use.
        (0usize..3 * MAX_COEFFS, 0usize..4),
    )
        .prop_map(|(m, s, q, opacity, degree, sh_vals, (spot, special))| {
            let mut coeffs = [[0.0f32; MAX_COEFFS]; 3];
            for c in 0..3 {
                for i in 0..basis_count(degree) {
                    coeffs[c][i] = sh_vals[c * MAX_COEFFS + i];
                }
            }
            // Exercise the encoder's edge cases: subnormal f32s, values
            // beyond f16 range, and negative zero.
            let (sc, si) = (spot / MAX_COEFFS, spot % MAX_COEFFS);
            if si < basis_count(degree) {
                coeffs[sc][si] = match special {
                    0 => 1.0e-40,   // f32 subnormal, flushes to 0 in f16
                    1 => 1.0e30,    // far beyond f16 max: saturates
                    2 => -65_520.0, // first value that would round to -inf
                    _ => -0.0,
                };
            }
            Gaussian {
                mean: Vec3::new(m.0, m.1, m.2),
                scale: Vec3::new(s.0, s.1, s.2),
                rotation: Quat::new(q.0.max(0.01), q.1, q.2, q.3).normalized(),
                opacity,
                sh: ShCoefficients { coeffs, degree },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// v1 and v2-SoA encodings are lossless for any valid cloud at any
    /// mix of SH degrees (records homogenize to the cloud max degree
    /// with zero padding, which `eval` ignores).
    #[test]
    fn f32_formats_roundtrip_losslessly(
        gaussians in prop::collection::vec(arb_gaussian_with_degree(), 0..24),
    ) {
        let cloud = GaussianCloud::from_gaussians(gaussians);
        let max_degree = cloud.max_sh_degree();

        let v1 = io::try_encode_cloud(&cloud).expect("encode v1");
        let back = io::decode_cloud(&v1).expect("decode v1");
        prop_assert_eq!(back.len(), cloud.len());
        for ((_, a), (_, b)) in cloud.iter().zip(back.iter()) {
            prop_assert_eq!(b.sh.degree, max_degree);
            prop_assert_eq!(a.mean, b.mean);
            prop_assert_eq!(a.scale, b.scale);
            prop_assert_eq!(a.rotation, b.rotation);
            prop_assert_eq!(a.opacity, b.opacity);
            for c in 0..3 {
                for i in 0..MAX_COEFFS {
                    let want = if i < basis_count(a.sh.degree) { a.sh.coeffs[c][i] } else { 0.0 };
                    prop_assert_eq!(b.sh.coeffs[c][i].to_bits(), want.to_bits());
                }
            }
        }

        let v2 = io::try_encode_cloud_as(&cloud, StorageFormat::SoaF32).expect("encode v2 SoA");
        let stored = io::decode_storage(&v2).expect("decode v2 SoA");
        prop_assert_eq!(stored.format(), StorageFormat::SoaF32);
        prop_assert_eq!(stored.into_cloud(), back);
    }

    /// The compact backend is quantize-once: serializing and decoding a
    /// `CompactCloud` loses nothing beyond the original quantization, so
    /// a second encode is byte-identical and every decoded Gaussian is
    /// finite and valid.
    #[test]
    fn compact_roundtrip_is_stable_and_finite(
        gaussians in prop::collection::vec(arb_gaussian_with_degree(), 1..24),
    ) {
        let cloud = GaussianCloud::from_gaussians(gaussians);
        let bytes = io::try_encode_cloud_as(&cloud, StorageFormat::Compact).expect("encode");
        let stored = io::decode_storage(&bytes).expect("decode");
        prop_assert_eq!(stored.format(), StorageFormat::Compact);
        let again = io::encode_storage(&stored).expect("re-encode");
        prop_assert_eq!(&bytes, &again, "compact encode→decode→encode must be bitwise stable");

        let decoded = stored.into_cloud();
        prop_assert_eq!(decoded.len(), cloud.len());
        for ((_, orig), (_, g)) in cloud.iter().zip(decoded.iter()) {
            prop_assert!(g.is_valid(), "decoded compact Gaussian invalid: {:?}", g);
            // Quantization error bounds: opacity within half a u8 step,
            // unit rotation within the 10-bit packing tolerance.
            prop_assert!((g.opacity - orig.opacity).abs() <= 0.5 / 255.0 + 1e-6);
            let dot = (g.rotation.w * orig.rotation.w
                + g.rotation.x * orig.rotation.x
                + g.rotation.y * orig.rotation.y
                + g.rotation.z * orig.rotation.z)
                .abs();
            prop_assert!(dot > 0.999, "rotation drifted: dot = {}", dot);
            for c in 0..3 {
                for i in 0..MAX_COEFFS {
                    prop_assert!(g.sh.coeffs[c][i].is_finite());
                }
            }
        }
    }

    /// In-memory storage backends agree with the codec: building a
    /// `SoaCloud`/`CompactCloud` directly matches encode→decode through
    /// the wire format.
    #[test]
    fn storage_backends_match_the_codec(
        gaussians in prop::collection::vec(arb_gaussian_with_degree(), 1..16),
    ) {
        let cloud = GaussianCloud::from_gaussians(gaussians);

        let soa = SoaCloud::from_cloud(&cloud);
        let via_codec = io::decode_storage(
            &io::try_encode_cloud_as(&cloud, StorageFormat::SoaF32).expect("encode"),
        )
        .expect("decode");
        prop_assert_eq!(neo_scene::CloudStorage::to_cloud(&soa), via_codec.into_cloud());

        let compact = CompactCloud::from_cloud(&cloud);
        let via_codec = io::decode_storage(
            &io::try_encode_cloud_as(&cloud, StorageFormat::Compact).expect("encode"),
        )
        .expect("decode");
        prop_assert_eq!(
            neo_scene::CloudStorage::to_cloud(&compact),
            via_codec.into_cloud()
        );
    }
}
