//! Smoke test mirroring `examples/quickstart.rs`: build a small synthetic
//! scene, render one frame with Neo's reuse-and-update renderer and the
//! full-resort baseline, and check the image agrees with the reference
//! pipeline at finite, sane PSNR.

use neo_core::{RendererConfig, SplatRenderer};
use neo_metrics::psnr;
use neo_pipeline::{render_reference, RenderConfig};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};

#[test]
fn quickstart_one_frame_matches_reference() {
    let scene = ScenePreset::Family;
    let cloud = scene.build_scaled(0.002);
    assert!(!cloud.is_empty());
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(160, 90));
    let cam = sampler.frame(0);

    let mut neo = SplatRenderer::new_neo(RendererConfig::default().with_tile_size(32));
    let result = neo.render_frame(&cloud, &cam);
    let image = result.image.as_ref().expect("image requested by default");
    assert_eq!(image.width(), 160);
    assert_eq!(image.height(), 90);
    for px in image.pixels() {
        assert!(px.x.is_finite() && px.y.is_finite() && px.z.is_finite());
    }

    let (reference, ref_stats) = render_reference(&cloud, &cam, &RenderConfig::default());
    assert!(ref_stats.projected > 0, "scene must be visible in frame 0");

    // The strategies sort the same splats to the same order on frame 0, so
    // quality should be near-identical: PSNR is either infinite (bitwise
    // equal) or comfortably high, and never NaN.
    let p = psnr(&reference, image);
    assert!(!p.is_nan());
    assert!(p > 30.0, "one-frame PSNR vs reference too low: {p} dB");
}

#[test]
fn quickstart_reuse_matches_baseline_over_frames() {
    // The heart of the quickstart demo: after the warm-up frame, Neo's
    // reuse-and-update path keeps image quality at baseline levels.
    let scene = ScenePreset::Family;
    let cloud = scene.build_scaled(0.002);
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(160, 90));

    let mut neo = SplatRenderer::new_neo(RendererConfig::default().with_tile_size(32));
    let mut baseline = SplatRenderer::new_baseline(RendererConfig::default().with_tile_size(32));

    for i in 0..4 {
        let cam = sampler.frame(i);
        let fn_ = neo.render_frame(&cloud, &cam);
        let fb = baseline.render_frame(&cloud, &cam);
        let p = psnr(
            fb.image.as_ref().expect("baseline image"),
            fn_.image.as_ref().expect("neo image"),
        );
        assert!(!p.is_nan());
        assert!(p > 30.0, "frame {i}: neo vs baseline PSNR {p} dB");
    }
}
