//! Smoke test mirroring `examples/quickstart.rs`: build a small synthetic
//! scene, render one frame through the `RenderEngine`/`RenderSession`
//! front door with Neo's reuse-and-update strategy and the full-resort
//! baseline, and check the image agrees with the reference pipeline at
//! finite, sane PSNR.

use neo_core::{RenderEngine, RendererConfig, StrategyKind};
use neo_metrics::psnr;
use neo_pipeline::{render_reference, RenderConfig};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};
use std::sync::Arc;

#[test]
fn quickstart_one_frame_matches_reference() {
    let scene = ScenePreset::Family;
    let engine = RenderEngine::builder()
        .scene(scene.build_scaled(0.002))
        .config(RendererConfig::default().with_tile_size(32))
        .build()
        .expect("valid config");
    let cloud = Arc::clone(engine.scene());
    assert!(!cloud.is_empty());
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(160, 90));
    let cam = sampler.frame(0);

    let mut neo = engine.session();
    let result = neo.render_frame(&cam).expect("valid camera");
    let image = result.image.as_ref().expect("image requested by default");
    assert_eq!(image.width(), 160);
    assert_eq!(image.height(), 90);
    for px in image.pixels() {
        assert!(px.x.is_finite() && px.y.is_finite() && px.z.is_finite());
    }

    let (reference, ref_stats) = render_reference(cloud.as_ref(), &cam, &RenderConfig::default());
    assert!(ref_stats.projected > 0, "scene must be visible in frame 0");

    // The strategies sort the same splats to the same order on frame 0, so
    // quality should be near-identical: PSNR is either infinite (bitwise
    // equal) or comfortably high, and never NaN.
    let p = psnr(&reference, image);
    assert!(!p.is_nan());
    assert!(p > 30.0, "one-frame PSNR vs reference too low: {p} dB");
}

#[test]
fn quickstart_reuse_matches_baseline_over_frames() {
    // The heart of the quickstart demo: after the warm-up frame, Neo's
    // reuse-and-update path keeps image quality at baseline levels. Both
    // engines share one scene Arc.
    let scene = ScenePreset::Family;
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(160, 90));
    let config = RendererConfig::default().with_tile_size(32);

    let neo_engine = RenderEngine::builder()
        .scene(scene.build_scaled(0.002))
        .config(config.clone())
        .strategy(StrategyKind::ReuseUpdate)
        .build()
        .expect("valid config");
    let baseline_engine = RenderEngine::builder()
        .scene(Arc::clone(neo_engine.scene()))
        .config(config)
        .strategy(StrategyKind::FullResort)
        .build()
        .expect("valid config");
    let mut neo = neo_engine.session();
    let mut baseline = baseline_engine.session();

    for i in 0..4 {
        let cam = sampler.frame(i);
        let fn_ = neo.render_frame(&cam).expect("valid camera");
        let fb = baseline.render_frame(&cam).expect("valid camera");
        let p = psnr(
            fb.image.as_ref().expect("baseline image"),
            fn_.image.as_ref().expect("neo image"),
        );
        assert!(!p.is_nan());
        assert!(p > 30.0, "frame {i}: neo vs baseline PSNR {p} dB");
    }
}

#[test]
fn quickstart_stream_is_equivalent_to_manual_loop() {
    // FrameStream is sugar over render_frame: same sampler, same frames.
    let scene = ScenePreset::Family;
    let sampler = FrameSampler::new(scene.trajectory(), 30.0, Resolution::Custom(160, 90));
    let engine = RenderEngine::builder()
        .scene(scene.build_scaled(0.002))
        .config(RendererConfig::default().with_tile_size(32))
        .build()
        .expect("valid config");

    let mut manual = engine.session();
    let manual_frames: Vec<_> = (0..3)
        .map(|i| manual.render_frame(&sampler.frame(i)).unwrap())
        .collect();

    let mut streamed = engine.session();
    let streamed_frames: Vec<_> = streamed
        .stream(&sampler, 3)
        .collect::<Result<_, _>>()
        .unwrap();

    assert_eq!(manual_frames, streamed_frames);
}
