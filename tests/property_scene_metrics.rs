//! Property-based tests on scene serialization and the image metrics.

use neo_math::sh::ShCoefficients;
use neo_math::{Quat, Vec3};
use neo_pipeline::Image;
use neo_scene::{io, Gaussian, GaussianCloud};
use proptest::prelude::*;

fn arb_gaussian() -> impl Strategy<Value = Gaussian> {
    (
        (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0),
        (0.001f32..5.0, 0.001f32..5.0, 0.001f32..5.0),
        (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
        0.0f32..=1.0,
        (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0),
    )
        .prop_map(|(m, s, q, opacity, c)| Gaussian {
            mean: Vec3::new(m.0, m.1, m.2),
            scale: Vec3::new(s.0, s.1, s.2),
            rotation: Quat::new(q.0.max(0.01), q.1, q.2, q.3).normalized(),
            opacity,
            sh: ShCoefficients::from_constant_color(Vec3::new(c.0, c.1, c.2)),
        })
}

fn arb_image(w: u32, h: u32) -> impl Strategy<Value = Image> {
    prop::collection::vec(0.0f32..=1.0, (w * h * 3) as usize).prop_map(move |vals| {
        let mut img = Image::new(w, h, Vec3::ZERO);
        for (i, px) in img.pixels_mut().iter_mut().enumerate() {
            *px = Vec3::new(vals[3 * i], vals[3 * i + 1], vals[3 * i + 2]);
        }
        img
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cloud_io_roundtrips(gaussians in prop::collection::vec(arb_gaussian(), 0..40)) {
        let cloud = GaussianCloud::from_gaussians(gaussians);
        let bytes = io::encode_cloud(&cloud);
        let back = io::decode_cloud(&bytes).expect("decode");
        prop_assert_eq!(cloud, back);
    }

    #[test]
    fn truncated_encoding_never_panics(
        gaussians in prop::collection::vec(arb_gaussian(), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let cloud = GaussianCloud::from_gaussians(gaussians);
        let bytes = io::encode_cloud(&cloud);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Must return an error or a valid cloud — never panic.
        let _ = io::decode_cloud(&bytes[..cut]);
    }

    #[test]
    fn covariance_always_psd(g in arb_gaussian()) {
        let cov = g.covariance();
        // Diagonal entries are variances: non-negative.
        for i in 0..3 {
            prop_assert!(cov.get(i, i) >= -1e-4, "var {} = {}", i, cov.get(i, i));
        }
        // Determinant of Σ = (sx·sy·sz)² ≥ 0.
        prop_assert!(cov.determinant() >= -1e-3);
    }

    #[test]
    fn psnr_is_symmetric_and_mse_nonnegative(
        a in arb_image(8, 8),
        b in arb_image(8, 8),
    ) {
        let m_ab = neo_metrics::mse(&a, &b);
        let m_ba = neo_metrics::mse(&b, &a);
        prop_assert!(m_ab >= 0.0);
        prop_assert!((m_ab - m_ba).abs() < 1e-12);
        prop_assert!((neo_metrics::psnr(&a, &b) - neo_metrics::psnr(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn ssim_self_is_one_and_bounded(a in arb_image(16, 16)) {
        prop_assert!((neo_metrics::ssim(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lpips_proxy_identity_and_nonnegative(
        a in arb_image(16, 16),
        b in arb_image(16, 16),
    ) {
        prop_assert!(neo_metrics::lpips_proxy(&a, &a) < 1e-9);
        prop_assert!(neo_metrics::lpips_proxy(&a, &b) >= 0.0);
    }
}
