//! Property suite for the `neo-serve` scheduling layer.
//!
//! Three contracts, property-tested over seeded random workloads:
//!
//! 1. **Trace determinism** — the virtual-clock schedule trace is a pure
//!    function of `(workload spec, seed, scheduler)`: byte-identical
//!    across repeat runs and across `Parallelism::Serial` vs
//!    `Parallelism::Threads(4)` engines.
//! 2. **EDF dominance** — on any workload where round-robin (a
//!    non-idling, non-preemptive policy) meets every deadline, EDF meets
//!    every deadline too: non-preemptive EDF is optimal among non-idling
//!    non-preemptive single-server schedulers.
//! 3. **Admission bounds** — the wait queue never exceeds its bound and
//!    the active set never exceeds its capacity, for any workload and
//!    any (valid) admission configuration.

use neo_core::{RenderEngine, RendererConfig};
use neo_scene::presets::ScenePreset;
use neo_serve::{
    AdmissionConfig, BatchCoalesce, DeadlineEdf, RoundRobin, Scheduler, ServeConfig, ServeDriver,
    ServeReport, WorkUnitsCost, WorkloadSpec,
};
use proptest::prelude::*;

fn engine(threads: u32) -> RenderEngine {
    let mut config = RendererConfig::default().with_tile_size(16).without_image();
    if threads > 1 {
        config = config.with_threads(threads);
    }
    RenderEngine::builder()
        .scene(ScenePreset::Family.build_scaled(0.002))
        .config(config)
        .build()
        .expect("test configuration is valid")
}

/// Small, fast workloads: tiny resolutions, a handful of sessions.
fn workload(sessions: u32, seed: u64, slack_pct: u32) -> WorkloadSpec {
    WorkloadSpec {
        sessions,
        seed,
        frames: (2, 4),
        refresh_choices: vec![30.0, 60.0, 90.0],
        resolutions: vec![(64, 36), (96, 54)],
        arrival_spread_us: 30_000,
        deadline_slack_pct: slack_pct,
    }
}

fn run(
    eng: &RenderEngine,
    spec: &WorkloadSpec,
    scheduler: &mut dyn Scheduler,
    config: ServeConfig,
    cost: &WorkUnitsCost,
) -> ServeReport {
    let sessions = spec.generate().expect("valid workload");
    ServeDriver::new(eng, ScenePreset::Family.trajectory(), config)
        .expect("valid config")
        .run_virtual(&sessions, scheduler, cost)
        .expect("serve run completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Contract 1: byte-identical traces across repeat runs and across
    /// engine thread counts, for every built-in scheduler.
    #[test]
    fn virtual_traces_are_thread_and_run_invariant(
        sessions in 2u32..6,
        seed in 0u64..1_000,
    ) {
        let spec = workload(sessions, seed, 200);
        let config = ServeConfig::default();
        let cost = WorkUnitsCost::default();
        let serial = engine(1);
        let threaded = engine(4);
        let make: [fn() -> Box<dyn Scheduler>; 3] = [
            || Box::new(RoundRobin::new()),
            || Box::new(DeadlineEdf::new()),
            || Box::new(BatchCoalesce::new(4)),
        ];
        for mk in make {
            let a = run(&serial, &spec, mk().as_mut(), config, &cost);
            let b = run(&serial, &spec, mk().as_mut(), config, &cost);
            let c = run(&threaded, &spec, mk().as_mut(), config, &cost);
            prop_assert_eq!(
                a.trace.canonical_bytes(),
                b.trace.canonical_bytes(),
                "{} trace changed across repeat runs",
                a.scheduler
            );
            prop_assert_eq!(
                a.trace.canonical_bytes(),
                c.trace.canonical_bytes(),
                "{} trace changed between Serial and Threads(4) engines",
                a.scheduler
            );
            prop_assert_eq!(a.frames_served(), c.frames_served());
        }
    }

    /// Contract 2: on any workload round-robin can fully schedule, EDF
    /// misses nothing either. (Both policies are non-idling and
    /// non-preemptive; admission capacity exceeds the session count, so
    /// both see the identical job set.)
    #[test]
    fn edf_meets_every_deadline_round_robin_meets(
        sessions in 2u32..6,
        seed in 0u64..1_000,
        slack_index in 0usize..4,
        units_index in 0usize..3,
    ) {
        let slack_pct = [100u32, 200, 400, 800][slack_index];
        let units_per_us = [512u64, 4096, 32_768][units_index];
        let spec = workload(sessions, seed, slack_pct);
        let config = ServeConfig {
            batch_overhead_us: 0,
            ..ServeConfig::default()
        };
        let cost = WorkUnitsCost { units_per_us, fixed_us: 50 };
        let eng = engine(1);
        let rr = run(&eng, &spec, &mut RoundRobin::new(), config, &cost);
        prop_assert_eq!(rr.admission.rejected, 0, "capacity covers all sessions");
        if rr.missed_deadlines() == 0 {
            let edf = run(&eng, &spec, &mut DeadlineEdf::new(), config, &cost);
            prop_assert_eq!(
                edf.missed_deadlines(),
                0,
                "EDF missed a deadline on a workload round-robin fully scheduled"
            );
        }
    }

    /// Contract 3: admission bounds hold for arbitrary tight capacities,
    /// and the counters balance.
    #[test]
    fn admission_never_exceeds_bounds(
        sessions in 3u32..8,
        seed in 0u64..1_000,
        max_active in 1usize..4,
        queue_bound in 0usize..3,
    ) {
        let spec = workload(sessions, seed, 400);
        let config = ServeConfig {
            admission: AdmissionConfig { max_active, queue_bound },
            ..ServeConfig::default()
        };
        let r = run(
            &engine(1),
            &spec,
            &mut RoundRobin::new(),
            config,
            &WorkUnitsCost::default(),
        );
        prop_assert!(r.admission.peak_active <= max_active);
        prop_assert!(r.admission.peak_queue <= queue_bound);
        prop_assert_eq!(r.admission.offered, u64::from(sessions));
        prop_assert_eq!(
            r.admission.offered,
            r.admission.admitted + r.admission.rejected
        );
        // Every admitted session completes all its frames.
        prop_assert_eq!(r.sessions.len() as u64, r.admission.admitted);
        for s in &r.sessions {
            prop_assert_eq!(s.frames_completed, s.frames_requested);
        }
    }
}
