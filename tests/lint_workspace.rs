//! The shipped tree must be lint-clean: `neo-lint --workspace` finds
//! nothing, and every suppression it honors carries a reason.
//!
//! This is the same gate CI runs (`cargo run -p neo-lint -- --workspace`),
//! expressed as a test so `cargo test` alone catches a regression.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = neo_lint::lint_workspace(root, None).expect("workspace sources must be readable");

    assert!(
        report.files_scanned > 50,
        "walk found only {} files; traversal is broken",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(neo_lint::Finding::render)
        .collect();
    assert!(
        report.is_clean(),
        "the shipped tree has {} lint finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn every_honored_suppression_names_its_rule_site() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = neo_lint::lint_workspace(root, None).expect("workspace sources must be readable");

    // The sweep left a justified pragma inventory behind; if it ever
    // drops to zero the lint (or the walk) silently stopped seeing the
    // annotated sites.
    assert!(
        !report.suppressed.is_empty(),
        "no suppressed findings recorded; pragma matching is broken"
    );
    for s in &report.suppressed {
        assert!(
            !s.file.is_empty() && s.line > 0,
            "suppressed finding lost its location: {s:?}"
        );
    }
}

#[test]
fn all_eleven_rules_are_registered_and_scoped() {
    // The live-tree gate above only proves the rules that exist found
    // nothing; this pins that the transitive rules r9–r11 actually
    // exist in the registry, so "clean" keeps meaning "clean under all
    // eleven rules".
    let ids: Vec<&str> = neo_lint::RuleId::ALL.iter().map(|r| r.id()).collect();
    assert_eq!(
        ids,
        ["r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11"]
    );
    for r in neo_lint::RuleId::ALL {
        assert!(!r.scope_note().is_empty(), "{} has no scope note", r.id());
    }
}

#[test]
fn live_tree_sarif_is_valid_with_a_run_per_rule_set() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = neo_lint::lint_workspace(root, None).expect("workspace sources must be readable");
    let sarif = report.to_sarif();
    let counts = neo_lint::report::validate_sarif(&sarif)
        .expect("workspace SARIF must pass the shape check");
    assert_eq!(counts.len(), 2, "one run per rule set (local, transitive)");
    // A clean tree means zero *unsuppressed* findings; the SARIF still
    // carries the suppressed inventory, so every finding — live or
    // suppressed — appears in exactly one of the two runs.
    assert_eq!(
        counts[0] + counts[1],
        report.findings.len() + report.suppressed.len(),
        "SARIF runs must account for every finding exactly once"
    );
    assert!(
        counts[0] > 0,
        "suppressed inventory should appear in the local run"
    );
}

#[test]
fn crate_filter_restricts_the_walk() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let all = neo_lint::lint_workspace(root, None).expect("workspace walk");
    let sort_only =
        neo_lint::lint_workspace(root, Some(&["neo-sort".to_string()])).expect("filtered walk");
    assert!(sort_only.files_scanned > 0);
    assert!(sort_only.files_scanned < all.files_scanned);
}
