//! The shipped tree must be lint-clean: `neo-lint --workspace` finds
//! nothing, and every suppression it honors carries a reason.
//!
//! This is the same gate CI runs (`cargo run -p neo-lint -- --workspace`),
//! expressed as a test so `cargo test` alone catches a regression.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = neo_lint::lint_workspace(root, None).expect("workspace sources must be readable");

    assert!(
        report.files_scanned > 50,
        "walk found only {} files; traversal is broken",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(neo_lint::Finding::render)
        .collect();
    assert!(
        report.is_clean(),
        "the shipped tree has {} lint finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn every_honored_suppression_names_its_rule_site() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = neo_lint::lint_workspace(root, None).expect("workspace sources must be readable");

    // The sweep left a justified pragma inventory behind; if it ever
    // drops to zero the lint (or the walk) silently stopped seeing the
    // annotated sites.
    assert!(
        !report.suppressed.is_empty(),
        "no suppressed findings recorded; pragma matching is broken"
    );
    for s in &report.suppressed {
        assert!(
            !s.file.is_empty() && s.line > 0,
            "suppressed finding lost its location: {s:?}"
        );
    }
}

#[test]
fn crate_filter_restricts_the_walk() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let all = neo_lint::lint_workspace(root, None).expect("workspace walk");
    let sort_only =
        neo_lint::lint_workspace(root, Some(&["neo-sort".to_string()])).expect("filtered walk");
    assert!(sort_only.files_scanned > 0);
    assert!(sort_only.files_scanned < all.files_scanned);
}
