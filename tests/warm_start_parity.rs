//! Contracts of the warm-start temporal sorting cache:
//!
//! 1. **Exact mode** is byte-identical to cold sorting — the full
//!    `FrameResult` (pixels, stats, traffic, sort cost, tile loads,
//!    temporal stats) matches a session without the cache, for all five
//!    built-in strategies at 1 and 4 threads.
//! 2. **Repair mode** preserves the intra-frame determinism contract:
//!    output is byte-identical across thread counts and shard plans.
//! 3. **Repair mode over an exact sorter** renders byte-identical
//!    images to cold sorting (the repaired order *is* the exact order)
//!    while cutting sorting traffic, and the cache survives re-planning
//!    frame to frame.

use neo_core::{
    FrameResult, RenderEngine, RendererConfig, ShardPlan, StrategyKind, WarmStartConfig,
};
use neo_scene::{presets::ScenePreset, FrameSampler, Resolution};

const FRAMES: usize = 5;

fn all_strategies() -> [StrategyKind; 5] {
    [
        StrategyKind::FullResort,
        StrategyKind::Hierarchical,
        StrategyKind::Periodic(3),
        StrategyKind::Background(2),
        StrategyKind::ReuseUpdate,
    ]
}

fn sampler() -> FrameSampler {
    // 160x96 at 16-px tiles → 10x6 = 60 tiles, enough for real sharding.
    FrameSampler::new(
        ScenePreset::Family.trajectory(),
        30.0,
        Resolution::Custom(160, 96),
    )
}

fn engine(kind: StrategyKind, config: RendererConfig) -> RenderEngine {
    RenderEngine::builder()
        .scene(ScenePreset::Family.build_scaled(0.002))
        .config(config)
        .strategy(kind)
        .build()
        .expect("test configuration is valid")
}

fn render(kind: StrategyKind, config: RendererConfig, plan: &ShardPlan) -> Vec<FrameResult> {
    let sampler = sampler();
    let mut session = engine(kind, config).session();
    (0..FRAMES)
        .map(|i| {
            session
                .render_frame_with_plan(&sampler.frame(i), plan)
                .expect("trajectory camera is valid")
        })
        .collect()
}

#[test]
fn exact_mode_is_byte_identical_to_cold_sorting_for_all_strategies() {
    let base = RendererConfig::default().with_tile_size(16);
    for kind in all_strategies() {
        let cold = render(kind, base.clone(), &ShardPlan::serial());
        assert!(cold.iter().all(|f| f.image.is_some()));
        for threads in [1usize, 4] {
            let warm = render(
                kind,
                base.clone().with_temporal_cache(WarmStartConfig::exact()),
                &ShardPlan::balanced(threads),
            );
            assert_eq!(
                cold, warm,
                "{kind:?} exact-mode warm start diverged from cold at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn repair_mode_is_deterministic_across_thread_counts() {
    let config = RendererConfig::default()
        .with_tile_size(16)
        .with_temporal_cache(WarmStartConfig::default());
    for kind in all_strategies() {
        let serial = render(kind, config.clone(), &ShardPlan::serial());
        for threads in [2usize, 4, 7] {
            let sharded = render(kind, config.clone(), &ShardPlan::balanced(threads));
            assert_eq!(
                serial, sharded,
                "{kind:?} repair-mode warm start diverged at {threads} thread(s)"
            );
        }
        // Explicit degenerate cut lists must not disturb the cache either.
        let explicit = render(
            kind,
            config.clone(),
            &ShardPlan::explicit(vec![7, 3, 3, 99]),
        );
        assert_eq!(serial, explicit, "{kind:?} diverged under explicit cuts");
    }
}

#[test]
fn repair_over_exact_sorter_renders_cold_images_with_less_traffic() {
    let sampler = sampler();
    let base = RendererConfig::default().with_tile_size(16);
    let mut cold = engine(StrategyKind::FullResort, base.clone()).session();
    let mut warm = engine(
        StrategyKind::FullResort,
        base.with_temporal_cache(WarmStartConfig::default()),
    )
    .session();
    let mut cold_bytes = 0u64;
    let mut warm_bytes = 0u64;
    for i in 0..FRAMES {
        let cam = sampler.frame(i);
        let a = cold.render_frame(&cam).unwrap();
        let b = warm.render_frame(&cam).unwrap();
        assert_eq!(
            a.image, b.image,
            "repaired order must be the exact order (frame {i})"
        );
        assert_eq!(a.stats.blend_ops, b.stats.blend_ops, "frame {i}");
        if i == 0 {
            // First frame: every tile is a cold cache miss.
            assert_eq!(b.temporal.warm_tiles, 0);
            assert!(b.temporal.cold_tiles > 0);
        } else {
            cold_bytes += a.sort_cost.bytes_total();
            warm_bytes += b.sort_cost.bytes_total();
            assert!(
                b.temporal.hit_rate() > 0.5,
                "frame {i} hit rate {:.3}",
                b.temporal.hit_rate()
            );
            assert!(b.temporal.reused_entries > 0, "frame {i}");
        }
        // Cache-less sessions report all-zero temporal stats.
        assert_eq!(a.temporal.cached_tiles(), 0, "frame {i}");
    }
    assert!(
        warm_bytes * 2 < cold_bytes,
        "warm sorting traffic {warm_bytes} should be well under cold {cold_bytes}"
    );
}

#[test]
fn cache_survives_replanning_between_frames() {
    // Changing the shard plan every frame must not disturb the per-tile
    // caches: plans are pure scheduling, the cache is tile state.
    let config = RendererConfig::default()
        .with_tile_size(16)
        .with_temporal_cache(WarmStartConfig::default());
    let sampler = sampler();
    let mut fixed = engine(StrategyKind::FullResort, config.clone()).session();
    let mut replanned = engine(StrategyKind::FullResort, config).session();
    let plans = [
        ShardPlan::serial(),
        ShardPlan::balanced(4),
        ShardPlan::explicit(vec![5, 11, 23]),
        ShardPlan::balanced(7),
        ShardPlan::explicit(vec![1, 1, 2, 59]),
    ];
    for (i, plan) in plans.iter().enumerate().take(FRAMES) {
        let cam = sampler.frame(i);
        let a = fixed.render_frame(&cam).unwrap();
        let b = replanned.render_frame_with_plan(&cam, plan).unwrap();
        assert_eq!(a, b, "re-planning changed output on frame {i}");
        if i > 0 {
            assert!(b.temporal.warm_tiles > 0, "cache lost by re-planning");
        }
    }
}

#[test]
fn warm_start_composes_with_custom_strategy_factories() {
    // The cache wraps *factories*, so out-of-crate strategies get it too.
    use neo_sort::strategies::{FrameOrder, SortingStrategy};
    use neo_sort::{SortCost, TableEntry};

    #[derive(Debug)]
    struct SortedPassthrough;
    impl SortingStrategy for SortedPassthrough {
        fn name(&self) -> &str {
            "sorted-passthrough"
        }
        fn begin_frame(&mut self, _frame: u64) {}
        fn order(&mut self, current: &[(u32, f32)]) -> FrameOrder {
            let mut order: Vec<TableEntry> = current
                .iter()
                .map(|&(id, d)| TableEntry::new(id, d))
                .collect();
            order.sort_by_key(TableEntry::key);
            FrameOrder {
                order,
                cost: SortCost::new(),
                incoming: 0,
                outgoing: 0,
                reuse: None,
            }
        }
        fn cost(&self) -> SortCost {
            SortCost::new()
        }
    }

    let engine = RenderEngine::builder()
        .scene(ScenePreset::Family.build_scaled(0.002))
        .config(
            RendererConfig::default()
                .with_tile_size(16)
                .with_temporal_cache(WarmStartConfig::default()),
        )
        .strategy_factory("sorted-passthrough", || Box::new(SortedPassthrough))
        .build()
        .unwrap();
    assert_eq!(engine.strategy_name(), "warm-start(sorted-passthrough)");
    let sampler = sampler();
    let mut session = engine.session();
    session.render_frame(&sampler.frame(0)).unwrap();
    let f1 = session.render_frame(&sampler.frame(1)).unwrap();
    assert!(f1.temporal.hit_rate() > 0.5);
}
